//! Static verification of temporal recoverability / safety properties.
//!
//! The steady-state solvers answer *quantitative* questions ("what fraction
//! of time does the system spend above quorum?"). This module answers the
//! *qualitative* ones the paper's resilience claim rests on — "from every
//! reachable fault state, can rejuvenation restore a healthy quorum?" —
//! without solving the CTMC at all, following the recoverability-proof
//! programme of Nigam & Talcott (*Automating Recoverability Proofs for
//! Cyber-Physical Systems with Runtime Assurance Architectures*).
//!
//! ## Property language
//!
//! * [`Property::AlwaysRecoverable`] — **AG EF goal**: from every reachable
//!   marking there exists a firing path into a goal marking (e.g. "all `n`
//!   modules healthy"), optionally restricted to a designated set of
//!   recovery transitions (`via`). The restriction is what turns plain
//!   reachability into a *mechanism* statement: "recoverable via
//!   rejuvenation transitions alone", not "recoverable if further failures
//!   happen to help".
//! * [`Property::QuorumMaintained`] — a safety predicate over tangible
//!   markings: every reachable tangible marking either satisfies the quorum
//!   predicate or has at least one *enabled* recovery transition. A
//!   violation is a **stranded** sub-quorum marking: a fault state the
//!   rejuvenation mechanism cannot even begin to leave.
//! * [`Property::BoundedRejuvenation`] — a token bound on a place (e.g. "at
//!   most one module rejuvenating at a time"). Proved from a covering
//!   P-invariant when one exists (no exploration needed), otherwise checked
//!   exhaustively over the reachable space — which certifies exactly the
//!   places the structural analyzer must leave uncovered (`Pac` in the
//!   proactive model carries a `no-bound-certificate` info finding; the
//!   verifier closes that gap).
//! * [`Property::Custom`] — an arbitrary safety predicate checked over
//!   every reachable marking (tangible and vanishing).
//!
//! ## Why invariants + untimed reachability suffice (no solve)
//!
//! All four properties are qualitative: they depend only on *which* firing
//! sequences exist, never on their probability or duration. In a DSPN whose
//! exponential rates and immediate weights are strictly positive wherever
//! enabled, every untimed firing path has positive probability, so
//! "reachable in the untimed graph" coincides with "reachable with positive
//! probability" — timing can be erased. The explorer therefore fires
//! deterministic transitions like any other timed transition (no Erlang
//! expansion), keeps vanishing markings as first-class states (immediate
//! firings are path edges, restricted to the highest enabled priority with
//! positive weight, exactly as the stochastic semantics selects them), and
//! treats a transition whose marking-dependent rate or weight evaluates to
//! zero as disabled (it cannot fire there, so it must not smuggle in a
//! recovery path — this is what lets the mutation tests catch a zeroed
//! repair rate).
//!
//! The P-invariants from [`crate::analysis`] do three jobs: every explored
//! marking is checked against every invariant (an exactness guard on the
//! explorer itself — a violation aborts verification), covering invariants
//! prove [`Property::BoundedRejuvenation`] without exploration, and a fully
//! covered net has a finite invariant-feasible space, guaranteeing the
//! exploration terminates within its budget.
//!
//! Every verdict carries a machine-checkable [`Certificate`]: a witness
//! path from the *worst* reachable marking (the one farthest from the goal)
//! on success, or a concrete counterexample trace from the initial marking
//! to the offending marking on failure.

use crate::analysis::{p_invariants, place_bounds, Invariant};
use crate::enabling::{effective_rate, enabled_immediates, fire, is_enabled};
use crate::error::PetriError;
use crate::marking::Marking;
use crate::model::{Net, PlaceId, Timing, TransitionId};
use std::collections::{HashMap, HashSet, VecDeque};
use std::fmt;
use std::sync::Arc;

/// A boolean predicate over markings, shared by several property kinds.
pub type MarkingPredicate = Arc<dyn Fn(&Marking) -> bool + Send + Sync>;

/// A temporal recoverability / safety property to verify against a net.
#[non_exhaustive]
pub enum Property {
    /// From every reachable marking, a goal marking is reachable (AG EF
    /// goal), optionally via a restricted set of transitions.
    AlwaysRecoverable {
        /// Name used in reports and certificates.
        name: String,
        /// Identifies the recovered markings (e.g. all modules healthy).
        goal: MarkingPredicate,
        /// When `Some`, only these transitions may appear on the recovery
        /// path — proving recovery is achieved *by the mechanism*, not by
        /// incidental further failures. `None` allows every transition.
        via: Option<Vec<TransitionId>>,
    },
    /// Every reachable tangible marking either satisfies `quorum` or has at
    /// least one enabled transition from `recovery` (no stranded sub-quorum
    /// marking).
    QuorumMaintained {
        /// Name used in reports and certificates.
        name: String,
        /// The voting-quorum predicate (e.g. functional modules ≥ majority).
        quorum: MarkingPredicate,
        /// Transitions that count as the recovery mechanism.
        recovery: Vec<TransitionId>,
    },
    /// `place` never holds more than `bound` tokens in any reachable
    /// marking.
    BoundedRejuvenation {
        /// Name used in reports and certificates.
        name: String,
        /// The place to bound.
        place: PlaceId,
        /// Maximum admissible token count.
        bound: u64,
    },
    /// An arbitrary safety predicate that must hold in every reachable
    /// marking (tangible and vanishing).
    Custom {
        /// Name used in reports and certificates.
        name: String,
        /// The predicate to check.
        pred: MarkingPredicate,
    },
}

impl Property {
    /// The property's report name.
    pub fn name(&self) -> &str {
        match self {
            Property::AlwaysRecoverable { name, .. }
            | Property::QuorumMaintained { name, .. }
            | Property::BoundedRejuvenation { name, .. }
            | Property::Custom { name, .. } => name,
        }
    }

    /// Machine-readable kind tag.
    pub fn kind(&self) -> &'static str {
        match self {
            Property::AlwaysRecoverable { .. } => "always-recoverable",
            Property::QuorumMaintained { .. } => "quorum-maintained",
            Property::BoundedRejuvenation { .. } => "bounded-rejuvenation",
            Property::Custom { .. } => "custom-safety",
        }
    }
}

impl fmt::Debug for Property {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Property::{} `{}`", self.kind(), self.name())
    }
}

/// Budgets for the untimed exploration backing [`Net::verify`].
#[derive(Debug, Clone)]
pub struct VerifyOptions {
    /// Abort when more than this many markings (tangible + vanishing) are
    /// discovered.
    pub max_states: usize,
    /// Abort when any place accumulates more than this many tokens.
    pub token_bound: u32,
}

impl Default for VerifyOptions {
    fn default() -> Self {
        VerifyOptions {
            max_states: 250_000,
            token_bound: 4096,
        }
    }
}

/// One step of a witness path or counterexample trace: the transition fired
/// and the labeled marking it produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceStep {
    /// Name of the fired transition.
    pub transition: String,
    /// The marking reached, rendered as `place:tokens` pairs.
    pub marking: String,
}

/// The machine-checkable evidence attached to a [`PropertyResult`].
#[derive(Debug, Clone)]
#[non_exhaustive]
pub enum Certificate {
    /// The property holds; `path` recovers the *worst* reachable marking
    /// (the one needing the most transitions) into the goal set.
    Witness {
        /// Markings the check covered.
        checked_markings: usize,
        /// The reachable marking farthest from the goal.
        worst_marking: String,
        /// Recovery path length from that marking.
        recovery_steps: usize,
        /// The recovery path itself.
        path: Vec<TraceStep>,
    },
    /// The property holds by a covering P-invariant alone — no exploration
    /// was needed for this verdict.
    InvariantBound {
        /// The bounded place.
        place: String,
        /// The structural token bound the invariant proves.
        bound: u64,
        /// The invariant's place weights (the algebraic witness).
        weights: Vec<u64>,
    },
    /// The property holds; every reachable marking was checked.
    Exhaustive {
        /// Markings the check covered.
        checked_markings: usize,
        /// What the exhaustive sweep observed (e.g. the max token count).
        detail: String,
    },
    /// The property fails at `marking`; `trace` reaches it from the initial
    /// marking.
    Counterexample {
        /// Why the marking violates the property.
        reason: String,
        /// The offending marking, rendered as `place:tokens` pairs.
        marking: String,
        /// Firing sequence from the initial marking to the offender.
        trace: Vec<TraceStep>,
    },
}

impl Certificate {
    /// Machine-readable kind tag.
    pub fn kind(&self) -> &'static str {
        match self {
            Certificate::Witness { .. } => "witness-path",
            Certificate::InvariantBound { .. } => "invariant-bound",
            Certificate::Exhaustive { .. } => "exhaustive-check",
            Certificate::Counterexample { .. } => "counterexample",
        }
    }

    /// One-line human summary of the evidence.
    pub fn summary(&self) -> String {
        match self {
            Certificate::Witness {
                checked_markings,
                worst_marking,
                recovery_steps,
                ..
            } => format!(
                "all {checked_markings} reachable markings recover; worst [{worst_marking}] \
                 needs {recovery_steps} step(s)"
            ),
            Certificate::InvariantBound { place, bound, .. } => {
                format!("P-invariant bounds `{place}` at {bound}")
            }
            Certificate::Exhaustive {
                checked_markings,
                detail,
            } => format!("{checked_markings} reachable markings checked; {detail}"),
            Certificate::Counterexample {
                reason,
                marking,
                trace,
            } => format!(
                "{reason} at [{marking}] ({} step(s) from the initial marking)",
                trace.len()
            ),
        }
    }
}

/// Verdict and evidence for one [`Property`].
#[derive(Debug, Clone)]
pub struct PropertyResult {
    /// Property name.
    pub property: String,
    /// Property kind tag (see [`Property::kind`]).
    pub kind: &'static str,
    /// Whether the property holds.
    pub holds: bool,
    /// The evidence.
    pub certificate: Certificate,
}

/// The result of verifying a batch of properties against one net.
#[derive(Debug)]
pub struct VerifyReport {
    /// Name of the verified net.
    pub net_name: String,
    /// Reachable markings explored (tangible + vanishing).
    pub states: usize,
    /// Tangible markings among them.
    pub tangible_states: usize,
    /// P-invariants every explored marking was checked against.
    pub p_invariant_count: usize,
    /// Per-property verdicts, in input order.
    pub results: Vec<PropertyResult>,
}

impl VerifyReport {
    /// `true` when every property holds.
    pub fn all_hold(&self) -> bool {
        self.results.iter().all(|r| r.holds)
    }

    /// Looks up a property verdict by name.
    pub fn result(&self, name: &str) -> Option<&PropertyResult> {
        self.results.iter().find(|r| r.property == name)
    }
}

impl fmt::Display for VerifyReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "verify report for `{}`: {} reachable markings ({} tangible), \
             {} P-invariant(s) held throughout",
            self.net_name, self.states, self.tangible_states, self.p_invariant_count
        )?;
        for r in &self.results {
            writeln!(
                f,
                "  [{}] {} ({}): {}",
                if r.holds { "ok" } else { "FAIL" },
                r.property,
                r.kind,
                r.certificate.summary()
            )?;
        }
        Ok(())
    }
}

impl Net {
    /// Verifies `properties` against this net's reachable marking space
    /// with default budgets. See the [module docs](self) for semantics.
    ///
    /// # Errors
    ///
    /// Returns [`PetriError::StateSpaceTooLarge`] /
    /// [`PetriError::TokenBoundExceeded`] when the exploration budget is
    /// exhausted, and [`PetriError::StructurallyUnsound`] if an explored
    /// marking violates a P-invariant (an internal-consistency failure).
    pub fn verify(&self, properties: &[Property]) -> Result<VerifyReport, PetriError> {
        verify_with(self, properties, &VerifyOptions::default())
    }
}

/// [`Net::verify`] with explicit exploration budgets.
///
/// # Errors
///
/// Same conditions as [`Net::verify`].
pub fn verify_with(
    net: &Net,
    properties: &[Property],
    opts: &VerifyOptions,
) -> Result<VerifyReport, PetriError> {
    let invariants = p_invariants(net);
    let graph = explore_untimed(net, &invariants, opts)?;
    let bounds = place_bounds(&invariants, net.place_count());

    let results = properties
        .iter()
        .map(|p| check_property(net, &graph, &invariants, &bounds, p))
        .collect();

    Ok(VerifyReport {
        net_name: net.name().to_string(),
        states: graph.markings.len(),
        tangible_states: graph.tangible.iter().filter(|&&t| t).count(),
        p_invariant_count: invariants.len(),
        results,
    })
}

/// The untimed reachability graph: every reachable marking (tangible and
/// vanishing), with edges labeled by the fired transition.
struct UntimedGraph {
    markings: Vec<Marking>,
    tangible: Vec<bool>,
    /// `edges[s]` lists `(transition index, successor state)`.
    edges: Vec<Vec<(usize, usize)>>,
    /// BFS parent `(predecessor state, transition)` for trace
    /// reconstruction; `None` for the initial marking.
    parent: Vec<Option<(usize, usize)>>,
}

/// Transitions that can actually fire from `m` under the stochastic
/// semantics: the highest-priority positive-weight immediates when the
/// marking is vanishing, otherwise every enabled timed transition whose
/// rate is strictly positive (deterministic transitions always fire once
/// their delay elapses). Returns `(fireable, is_vanishing)`.
fn fireable(net: &Net, m: &Marking) -> (Vec<usize>, bool) {
    let vanishing = net
        .transitions
        .iter()
        .enumerate()
        .any(|(t, tr)| tr.timing.is_immediate() && is_enabled(net, t, m));
    if vanishing {
        // Weight-0 immediates are filtered here: they cannot be selected,
        // so a vanishing marking whose immediates all weigh 0 is a dead end
        // (mirroring `reach`'s DeadVanishingMarking).
        let imms = enabled_immediates(net, m);
        return (imms.into_iter().map(|(t, _)| t).collect(), true);
    }
    let fires = net
        .transitions
        .iter()
        .enumerate()
        .filter(|&(t, tr)| !tr.timing.is_immediate() && is_enabled(net, t, m))
        .filter(|&(t, tr)| match tr.timing {
            Timing::Deterministic { .. } => true,
            _ => effective_rate(net, t, m).is_some_and(|r| r.is_finite() && r > 0.0),
        })
        .map(|(t, _)| t)
        .collect();
    (fires, false)
}

fn explore_untimed(
    net: &Net,
    invariants: &[Invariant],
    opts: &VerifyOptions,
) -> Result<UntimedGraph, PetriError> {
    let check_marking = |m: &Marking| -> Result<(), PetriError> {
        for (p, t) in m.iter() {
            if t > opts.token_bound {
                return Err(PetriError::TokenBoundExceeded {
                    place: net.place_name(PlaceId(p)).to_string(),
                    bound: opts.token_bound,
                });
            }
        }
        for inv in invariants {
            if inv.weighted_sum(m) != inv.token_sum {
                return Err(PetriError::StructurallyUnsound {
                    net: net.name().to_string(),
                    details: format!(
                        "explored marking {m} violates P-invariant {:?} (explorer \
                         inconsistency)",
                        inv.weights
                    ),
                });
            }
        }
        Ok(())
    };

    let mut index: HashMap<Marking, usize> = HashMap::new();
    let mut markings: Vec<Marking> = Vec::new();
    let mut tangible: Vec<bool> = Vec::new();
    let mut edges: Vec<Vec<(usize, usize)>> = Vec::new();
    let mut parent: Vec<Option<(usize, usize)>> = Vec::new();
    let mut queue: VecDeque<usize> = VecDeque::new();

    let m0 = net.initial_marking();
    check_marking(&m0)?;
    index.insert(m0.clone(), 0);
    markings.push(m0);
    tangible.push(false); // fixed up when the state is expanded
    parent.push(None);
    queue.push_back(0);

    while let Some(s) = queue.pop_front() {
        let m = markings[s].clone();
        let (fires, vanishing) = fireable(net, &m);
        tangible[s] = !vanishing;
        let mut out = Vec::with_capacity(fires.len());
        for t in fires {
            let succ = fire(net, t, &m);
            let id = match index.get(&succ) {
                Some(&id) => id,
                None => {
                    if markings.len() >= opts.max_states {
                        return Err(PetriError::StateSpaceTooLarge {
                            limit: opts.max_states,
                        });
                    }
                    check_marking(&succ)?;
                    let id = markings.len();
                    index.insert(succ.clone(), id);
                    markings.push(succ);
                    tangible.push(false);
                    parent.push(Some((s, t)));
                    queue.push_back(id);
                    id
                }
            };
            out.push((t, id));
        }
        edges.push(out);
        debug_assert_eq!(edges.len(), s + 1);
    }

    Ok(UntimedGraph {
        markings,
        tangible,
        edges,
        parent,
    })
}

/// Renders a marking as `place:tokens` pairs in place order.
fn render_marking(net: &Net, m: &Marking) -> String {
    m.iter()
        .map(|(p, t)| format!("{}:{t}", net.place_name(PlaceId(p))))
        .collect::<Vec<_>>()
        .join(" ")
}

/// Reconstructs the firing trace from the initial marking to state `s`.
fn trace_from_initial(net: &Net, graph: &UntimedGraph, s: usize) -> Vec<TraceStep> {
    let mut steps = Vec::new();
    let mut cur = s;
    while let Some((pred, t)) = graph.parent[cur] {
        steps.push(TraceStep {
            transition: net.transitions[t].name.clone(),
            marking: render_marking(net, &graph.markings[cur]),
        });
        cur = pred;
    }
    steps.reverse();
    steps
}

fn check_property(
    net: &Net,
    graph: &UntimedGraph,
    invariants: &[Invariant],
    bounds: &[Option<u64>],
    property: &Property,
) -> PropertyResult {
    let certificate = match property {
        Property::AlwaysRecoverable { goal, via, .. } => {
            check_recoverable(net, graph, goal, via.as_deref())
        }
        Property::QuorumMaintained {
            quorum, recovery, ..
        } => check_quorum(net, graph, quorum, recovery),
        Property::BoundedRejuvenation { place, bound, .. } => {
            check_bounded(net, graph, invariants, bounds, *place, *bound)
        }
        Property::Custom { pred, .. } => check_safety(net, graph, pred),
    };
    PropertyResult {
        property: property.name().to_string(),
        kind: property.kind(),
        holds: !matches!(certificate, Certificate::Counterexample { .. }),
        certificate,
    }
}

/// AG EF goal, with the recovery path optionally restricted to `via`.
fn check_recoverable(
    net: &Net,
    graph: &UntimedGraph,
    goal: &MarkingPredicate,
    via: Option<&[TransitionId]>,
) -> Certificate {
    let n = graph.markings.len();
    let allowed: Option<HashSet<usize>> = via.map(|ts| ts.iter().map(|t| t.index()).collect());
    let allowed = |t: usize| allowed.as_ref().is_none_or(|set| set.contains(&t));

    // Reverse adjacency over allowed edges only.
    let mut rev: Vec<Vec<(usize, usize)>> = vec![Vec::new(); n];
    for (s, out) in graph.edges.iter().enumerate() {
        for &(t, succ) in out {
            if allowed(t) {
                rev[succ].push((t, s));
            }
        }
    }

    // Backward BFS from the goal set; `next[s]` records the first hop of a
    // shortest recovery path.
    let mut dist: Vec<Option<usize>> = vec![None; n];
    let mut next: Vec<Option<(usize, usize)>> = vec![None; n];
    let mut queue: VecDeque<usize> = VecDeque::new();
    for (s, m) in graph.markings.iter().enumerate() {
        if goal(m) {
            dist[s] = Some(0);
            queue.push_back(s);
        }
    }
    if queue.is_empty() {
        return Certificate::Counterexample {
            reason: "no reachable marking satisfies the recovery goal".to_string(),
            marking: render_marking(net, &graph.markings[0]),
            trace: Vec::new(),
        };
    }
    while let Some(s) = queue.pop_front() {
        let d = dist[s].expect("queued states have a distance");
        for &(t, pred) in &rev[s] {
            if dist[pred].is_none() {
                dist[pred] = Some(d + 1);
                next[pred] = Some((t, s));
                queue.push_back(pred);
            }
        }
    }

    if let Some(stranded) = (0..n).find(|&s| dist[s].is_none()) {
        return Certificate::Counterexample {
            reason: match via {
                Some(_) => {
                    "no path of designated recovery transitions reaches the goal".to_string()
                }
                None => "no firing path reaches the recovery goal".to_string(),
            },
            marking: render_marking(net, &graph.markings[stranded]),
            trace: trace_from_initial(net, graph, stranded),
        };
    }

    // Witness: the marking farthest from the goal and its recovery path.
    let worst = (0..n)
        .max_by_key(|&s| dist[s].expect("all states recover"))
        .expect("non-empty state space");
    let mut path = Vec::new();
    let mut cur = worst;
    while let Some((t, succ)) = next[cur] {
        path.push(TraceStep {
            transition: net.transitions[t].name.clone(),
            marking: render_marking(net, &graph.markings[succ]),
        });
        cur = succ;
    }
    Certificate::Witness {
        checked_markings: n,
        worst_marking: render_marking(net, &graph.markings[worst]),
        recovery_steps: dist[worst].expect("all states recover"),
        path,
    }
}

/// Every reachable tangible marking satisfies `quorum` or has an enabled
/// recovery transition.
fn check_quorum(
    net: &Net,
    graph: &UntimedGraph,
    quorum: &MarkingPredicate,
    recovery: &[TransitionId],
) -> Certificate {
    let recovery: HashSet<usize> = recovery.iter().map(|t| t.index()).collect();
    let mut sub_quorum = 0usize;
    for (s, m) in graph.markings.iter().enumerate() {
        if !graph.tangible[s] || quorum(m) {
            continue;
        }
        sub_quorum += 1;
        let has_recovery = graph.edges[s].iter().any(|&(t, _)| recovery.contains(&t));
        if !has_recovery {
            return Certificate::Counterexample {
                reason: "sub-quorum marking with no enabled recovery transition (stranded)"
                    .to_string(),
                marking: render_marking(net, m),
                trace: trace_from_initial(net, graph, s),
            };
        }
    }
    let checked = graph.tangible.iter().filter(|&&t| t).count();
    Certificate::Exhaustive {
        checked_markings: checked,
        detail: format!(
            "{sub_quorum} sub-quorum marking(s), each with an enabled recovery transition"
        ),
    }
}

/// Token bound on a place: invariant fast path, reachability fallback.
fn check_bounded(
    net: &Net,
    graph: &UntimedGraph,
    invariants: &[Invariant],
    bounds: &[Option<u64>],
    place: PlaceId,
    bound: u64,
) -> Certificate {
    let p = place.index();
    if let Some(structural) = bounds[p] {
        if structural <= bound {
            let witness = invariants
                .iter()
                .filter(|inv| inv.covers(p))
                .min_by_key(|inv| inv.token_sum / inv.weights[p])
                .expect("a bound implies a covering invariant");
            return Certificate::InvariantBound {
                place: net.place_name(place).to_string(),
                bound: structural,
                weights: witness.weights.clone(),
            };
        }
    }
    let mut observed = 0u64;
    for (s, m) in graph.markings.iter().enumerate() {
        let tokens = u64::from(m.tokens(place));
        observed = observed.max(tokens);
        if tokens > bound {
            return Certificate::Counterexample {
                reason: format!(
                    "place `{}` holds {tokens} tokens, exceeding the bound {bound}",
                    net.place_name(place)
                ),
                marking: render_marking(net, m),
                trace: trace_from_initial(net, graph, s),
            };
        }
    }
    Certificate::Exhaustive {
        checked_markings: graph.markings.len(),
        detail: format!(
            "max tokens observed on `{}`: {observed} (bound {bound})",
            net.place_name(place)
        ),
    }
}

/// AG pred over every reachable marking.
fn check_safety(net: &Net, graph: &UntimedGraph, pred: &MarkingPredicate) -> Certificate {
    for (s, m) in graph.markings.iter().enumerate() {
        if !pred(m) {
            return Certificate::Counterexample {
                reason: "safety predicate violated".to_string(),
                marking: render_marking(net, m),
                trace: trace_from_initial(net, graph, s),
            };
        }
    }
    Certificate::Exhaustive {
        checked_markings: graph.markings.len(),
        detail: "safety predicate holds everywhere".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::NetBuilder;

    /// One token circulating H → C → F → H (the module lifecycle skeleton).
    fn ring() -> (Net, PlaceId, PlaceId, PlaceId) {
        let mut b = NetBuilder::new("ring");
        let h = b.place("H", 1);
        let c = b.place("C", 0);
        let f = b.place("F", 0);
        let t1 = b.exponential("compromise", 1.0);
        let t2 = b.exponential("fail", 2.0);
        let t3 = b.exponential("repair", 3.0);
        b.input_arc(h, t1, 1).unwrap();
        b.output_arc(t1, c, 1).unwrap();
        b.input_arc(c, t2, 1).unwrap();
        b.output_arc(t2, f, 1).unwrap();
        b.input_arc(f, t3, 1).unwrap();
        b.output_arc(t3, h, 1).unwrap();
        (b.build().unwrap(), h, c, f)
    }

    fn healthy_goal(h: PlaceId) -> MarkingPredicate {
        let p = h.index();
        Arc::new(move |m: &Marking| m.as_slice()[p] >= 1)
    }

    #[test]
    fn ring_is_always_recoverable_with_witness() {
        let (net, h, _, _) = ring();
        let report = net
            .verify(&[Property::AlwaysRecoverable {
                name: "recover".into(),
                goal: healthy_goal(h),
                via: None,
            }])
            .unwrap();
        assert_eq!(report.states, 3);
        assert_eq!(report.tangible_states, 3);
        assert!(report.all_hold(), "{report}");
        let r = report.result("recover").unwrap();
        assert_eq!(r.kind, "always-recoverable");
        match &r.certificate {
            Certificate::Witness {
                checked_markings,
                recovery_steps,
                path,
                worst_marking,
            } => {
                assert_eq!(*checked_markings, 3);
                // Worst marking is C (two hops back to H via F).
                assert_eq!(*recovery_steps, 2);
                assert_eq!(path.len(), 2);
                assert!(worst_marking.contains("C:1"), "{worst_marking}");
                assert_eq!(path[0].transition, "fail");
                assert_eq!(path[1].transition, "repair");
            }
            other => panic!("expected witness, got {other:?}"),
        }
    }

    #[test]
    fn via_restriction_detects_missing_mechanism_path() {
        // Restricting recovery to `repair` alone strands C: only `fail`
        // moves the token out of C.
        let (net, h, _, _) = ring();
        let repair = net.transition_by_name("repair").unwrap();
        let report = net
            .verify(&[Property::AlwaysRecoverable {
                name: "repair-only".into(),
                goal: healthy_goal(h),
                via: Some(vec![repair]),
            }])
            .unwrap();
        let r = report.result("repair-only").unwrap();
        assert!(!r.holds);
        match &r.certificate {
            Certificate::Counterexample { marking, trace, .. } => {
                assert!(marking.contains("C:1"), "{marking}");
                assert_eq!(trace.len(), 1);
                assert_eq!(trace[0].transition, "compromise");
            }
            other => panic!("expected counterexample, got {other:?}"),
        }
    }

    #[test]
    fn dropped_repair_arc_yields_counterexample_trace() {
        // H → C → F with no way back: F is stranded.
        let mut b = NetBuilder::new("leak");
        let h = b.place("H", 1);
        let c = b.place("C", 0);
        let f = b.place("F", 0);
        let t1 = b.exponential("compromise", 1.0);
        let t2 = b.exponential("fail", 2.0);
        b.input_arc(h, t1, 1).unwrap();
        b.output_arc(t1, c, 1).unwrap();
        b.input_arc(c, t2, 1).unwrap();
        b.output_arc(t2, f, 1).unwrap();
        let net = b.build().unwrap();
        let report = net
            .verify(&[Property::AlwaysRecoverable {
                name: "recover".into(),
                goal: healthy_goal(h),
                via: None,
            }])
            .unwrap();
        let r = report.result("recover").unwrap();
        assert!(!r.holds);
        match &r.certificate {
            Certificate::Counterexample { marking, trace, .. } => {
                assert!(marking.contains("C:1") || marking.contains("F:1"));
                assert!(!trace.is_empty());
            }
            other => panic!("expected counterexample, got {other:?}"),
        }
    }

    #[test]
    fn zero_rate_transition_cannot_carry_recovery() {
        // `repair` has a marking-dependent rate that evaluates to 0:
        // build() accepts it, but it can never fire, so F is stranded.
        let mut b = NetBuilder::new("zr");
        let h = b.place("H", 1);
        let c = b.place("C", 0);
        let f = b.place("F", 0);
        let t1 = b.exponential("compromise", 1.0);
        let t2 = b.exponential("fail", 2.0);
        let t3 = b.exponential("repair", crate::RateSpec::Fn(Arc::new(|_: &Marking| 0.0)));
        b.input_arc(h, t1, 1).unwrap();
        b.output_arc(t1, c, 1).unwrap();
        b.input_arc(c, t2, 1).unwrap();
        b.output_arc(t2, f, 1).unwrap();
        b.input_arc(f, t3, 1).unwrap();
        b.output_arc(t3, h, 1).unwrap();
        let net = b.build().unwrap();
        let report = net
            .verify(&[Property::AlwaysRecoverable {
                name: "recover".into(),
                goal: healthy_goal(h),
                via: None,
            }])
            .unwrap();
        assert!(!report.all_hold(), "{report}");
    }

    #[test]
    fn quorum_stranding_detected_and_absence_certified() {
        let (net, h, _, f) = ring();
        let repair = net.transition_by_name("repair").unwrap();
        let fail = net.transition_by_name("fail").unwrap();
        let hp = h.index();
        let quorum: MarkingPredicate = Arc::new(move |m: &Marking| m.as_slice()[hp] >= 1);
        // With `repair` and `fail` as the recovery set, every sub-quorum
        // marking (C or F marked) has an enabled recovery transition.
        let ok = net
            .verify(&[Property::QuorumMaintained {
                name: "quorum".into(),
                quorum: Arc::new(move |m: &Marking| m.as_slice()[hp] >= 1),
                recovery: vec![repair, fail],
            }])
            .unwrap();
        assert!(ok.all_hold(), "{ok}");
        // With only `repair`, marking C is sub-quorum and stranded.
        let bad = net
            .verify(&[Property::QuorumMaintained {
                name: "quorum".into(),
                quorum,
                recovery: vec![repair],
            }])
            .unwrap();
        let r = bad.result("quorum").unwrap();
        assert!(!r.holds);
        match &r.certificate {
            Certificate::Counterexample { marking, .. } => {
                assert!(marking.contains("C:1"), "{marking}");
            }
            other => panic!("expected counterexample, got {other:?}"),
        }
        let _ = f;
    }

    #[test]
    fn bounded_rejuvenation_invariant_fast_path_and_violation() {
        let (net, h, _, _) = ring();
        let report = net
            .verify(&[
                Property::BoundedRejuvenation {
                    name: "h-bounded".into(),
                    place: h,
                    bound: 1,
                },
                Property::BoundedRejuvenation {
                    name: "h-overbounded".into(),
                    place: h,
                    bound: 0,
                },
            ])
            .unwrap();
        let ok = report.result("h-bounded").unwrap();
        assert!(ok.holds);
        assert!(matches!(
            ok.certificate,
            Certificate::InvariantBound { bound: 1, .. }
        ));
        // Bound 0 is violated by the initial marking itself (H holds 1).
        let bad = report.result("h-overbounded").unwrap();
        assert!(!bad.holds);
        match &bad.certificate {
            Certificate::Counterexample { trace, .. } => assert!(trace.is_empty()),
            other => panic!("expected counterexample, got {other:?}"),
        }
    }

    #[test]
    fn bounded_check_falls_back_to_reachability_for_uncovered_places() {
        // `counter` gains a token per cycle, uncovered by any P-invariant;
        // an inhibitor caps it at 2, which only reachability can see.
        let mut b = NetBuilder::new("capped");
        let p = b.place("p", 1);
        let q = b.place("q", 0);
        let counter = b.place("counter", 0);
        let go = b.exponential("go", 1.0);
        let back = b.exponential("back", 1.0);
        b.input_arc(p, go, 1).unwrap();
        b.output_arc(go, q, 1).unwrap();
        b.output_arc(go, counter, 1).unwrap();
        b.inhibitor_arc(counter, go, 3).unwrap();
        b.input_arc(q, back, 1).unwrap();
        b.output_arc(back, p, 1).unwrap();
        let net = b.build().unwrap();
        let report = net
            .verify(&[Property::BoundedRejuvenation {
                name: "counter-capped".into(),
                place: counter,
                bound: 3,
            }])
            .unwrap();
        let r = report.result("counter-capped").unwrap();
        assert!(r.holds, "{report}");
        match &r.certificate {
            Certificate::Exhaustive { detail, .. } => {
                assert!(detail.contains("max tokens observed"), "{detail}");
            }
            other => panic!("expected exhaustive certificate, got {other:?}"),
        }
    }

    #[test]
    fn custom_safety_predicate_checked_everywhere() {
        let (net, ..) = ring();
        let conserved: MarkingPredicate =
            Arc::new(|m: &Marking| m.as_slice().iter().sum::<u32>() == 1);
        let broken: MarkingPredicate = Arc::new(|m: &Marking| m.as_slice()[0] == 1);
        let report = net
            .verify(&[
                Property::Custom {
                    name: "conserved".into(),
                    pred: conserved,
                },
                Property::Custom {
                    name: "always-healthy".into(),
                    pred: broken,
                },
            ])
            .unwrap();
        assert!(report.result("conserved").unwrap().holds);
        assert!(!report.result("always-healthy").unwrap().holds);
    }

    #[test]
    fn deterministic_transitions_are_explored_untimed() {
        // A deterministic clock in the loop: `reach::explore` rejects this
        // net, but verification does not need the Erlang expansion.
        let mut b = NetBuilder::new("det");
        let p = b.place("p", 1);
        let q = b.place("q", 0);
        let tick = b.deterministic("tick", 5.0);
        let back = b.exponential("back", 1.0);
        b.input_arc(p, tick, 1).unwrap();
        b.output_arc(tick, q, 1).unwrap();
        b.input_arc(q, back, 1).unwrap();
        b.output_arc(back, p, 1).unwrap();
        let net = b.build().unwrap();
        let goal: MarkingPredicate = Arc::new(|m: &Marking| m.as_slice()[0] == 1);
        let report = net
            .verify(&[Property::AlwaysRecoverable {
                name: "recover".into(),
                goal,
                via: None,
            }])
            .unwrap();
        assert_eq!(report.states, 2);
        assert!(report.all_hold(), "{report}");
    }

    #[test]
    fn vanishing_markings_are_path_states_but_not_quorum_states() {
        // p --go--> v (vanishing) --imm--> q --back--> p
        let mut b = NetBuilder::new("van");
        let p = b.place("p", 1);
        let v = b.place("v", 0);
        let q = b.place("q", 0);
        let go = b.exponential("go", 1.0);
        let imm = b.immediate("imm");
        let back = b.exponential("back", 1.0);
        b.input_arc(p, go, 1).unwrap();
        b.output_arc(go, v, 1).unwrap();
        b.input_arc(v, imm, 1).unwrap();
        b.output_arc(imm, q, 1).unwrap();
        b.input_arc(q, back, 1).unwrap();
        b.output_arc(back, p, 1).unwrap();
        let net = b.build().unwrap();
        let vp = v.index();
        let pp = p.index();
        let report = net
            .verify(&[
                Property::AlwaysRecoverable {
                    name: "recover".into(),
                    goal: Arc::new(move |m: &Marking| m.as_slice()[pp] == 1),
                    via: None,
                },
                // The quorum predicate fails on the vanishing marking, but
                // vanishing markings pass in zero time and are not checked.
                Property::QuorumMaintained {
                    name: "no-v".into(),
                    quorum: Arc::new(move |m: &Marking| m.as_slice()[vp] == 0),
                    recovery: vec![],
                },
            ])
            .unwrap();
        assert_eq!(report.states, 3);
        assert_eq!(report.tangible_states, 2);
        assert!(report.all_hold(), "{report}");
    }

    #[test]
    fn budget_errors_are_reported() {
        let mut b = NetBuilder::new("grow");
        let src = b.place("src", 1);
        let sink = b.place("sink", 0);
        let t = b.exponential("t", 1.0);
        b.input_arc(src, t, 1).unwrap();
        b.output_arc(t, src, 1).unwrap();
        b.output_arc(t, sink, 1).unwrap();
        let net = b.build().unwrap();
        let opts = VerifyOptions {
            max_states: 10,
            token_bound: 1_000_000,
        };
        assert!(matches!(
            verify_with(&net, &[], &opts),
            Err(PetriError::StateSpaceTooLarge { limit: 10 })
        ));
        let opts = VerifyOptions {
            max_states: 1_000_000,
            token_bound: 5,
        };
        assert!(matches!(
            verify_with(&net, &[], &opts),
            Err(PetriError::TokenBoundExceeded { .. })
        ));
    }

    #[test]
    fn report_display_and_property_debug() {
        let (net, h, _, _) = ring();
        let prop = Property::AlwaysRecoverable {
            name: "recover".into(),
            goal: healthy_goal(h),
            via: None,
        };
        assert!(format!("{prop:?}").contains("always-recoverable"));
        let report = net.verify(&[prop]).unwrap();
        let text = report.to_string();
        assert!(text.contains("verify report"));
        assert!(text.contains("[ok] recover"));
        assert_eq!(report.results[0].certificate.kind(), "witness-path");
    }
}
