//! Exact steady-state solution of the embedded CTMC.

use crate::error::PetriError;
use crate::marking::Marking;
use crate::model::Net;
use crate::reach::{explore, ReachOptions, ReachabilityGraph};
use crate::reward::ExpectedReward;
use crate::solve::{solve_graph, SolutionMethod};
use std::collections::HashMap;

/// Options for [`steady_state_with`].
#[derive(Debug, Clone)]
pub struct SolverOptions {
    /// Reachability exploration budget.
    pub reach: ReachOptions,
    /// Chains up to this size are solved by dense Gaussian elimination;
    /// larger ones by sparse Gauss–Seidel.
    pub dense_threshold: usize,
    /// Convergence tolerance for the iterative solver.
    pub tolerance: f64,
    /// Sweep budget for the iterative solver.
    pub max_sweeps: usize,
}

impl Default for SolverOptions {
    fn default() -> Self {
        SolverOptions {
            reach: ReachOptions::default(),
            dense_threshold: 400,
            tolerance: 1e-13,
            max_sweeps: 200_000,
        }
    }
}

/// The stationary distribution of a net over its tangible markings.
#[derive(Debug)]
pub struct SteadyState {
    markings: Vec<Marking>,
    probs: Vec<f64>,
    /// Marking → state id, so point lookups are O(1) instead of a linear
    /// scan over the (possibly Erlang-expanded, thousands-of-states) space.
    index: HashMap<Marking, usize>,
}

impl SteadyState {
    /// Assembles a solution, building the marking-lookup index.
    pub(crate) fn new(markings: Vec<Marking>, probs: Vec<f64>) -> Self {
        debug_assert_eq!(markings.len(), probs.len());
        let index = markings
            .iter()
            .enumerate()
            .map(|(i, m)| (m.clone(), i))
            .collect();
        SteadyState {
            markings,
            probs,
            index,
        }
    }

    /// Number of tangible markings.
    pub fn state_count(&self) -> usize {
        self.markings.len()
    }

    /// Iterates over `(marking, probability)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&Marking, f64)> {
        self.markings.iter().zip(self.probs.iter().copied())
    }

    /// Stationary probability of the exact marking `m` (0 if unreachable).
    pub fn probability_of_marking(&self, m: &Marking) -> f64 {
        self.index.get(m).map_or(0.0, |&i| self.probs[i])
    }
}

impl ExpectedReward for SteadyState {
    fn expected_reward<F: Fn(&Marking) -> f64>(&self, reward: F) -> f64 {
        self.iter().map(|(m, p)| p * reward(m)).sum()
    }
}

/// Solves `net` for its stationary distribution with default options.
///
/// The net must contain no deterministic transitions (expand them with
/// [`crate::erlang_expand`] first) and its tangible CTMC must be ergodic.
///
/// # Errors
///
/// Propagates reachability errors ([`PetriError::StateSpaceTooLarge`],
/// [`PetriError::ImmediateCycle`], …) and solver failures
/// ([`PetriError::SolverDiverged`]).
pub fn steady_state(net: &Net) -> Result<SteadyState, PetriError> {
    steady_state_with(net, &SolverOptions::default())
}

/// Solves `net` for its stationary distribution with explicit options.
///
/// # Errors
///
/// See [`steady_state`].
pub fn steady_state_with(net: &Net, opts: &SolverOptions) -> Result<SteadyState, PetriError> {
    let graph = explore(net, &opts.reach)?;
    steady_state_of_graph(&graph, opts)
}

/// Solves a pre-computed reachability graph (the [`SolutionMethod::Auto`]
/// backend policy; use [`crate::solve_graph`] to pick a backend explicitly
/// or to inspect the residual).
///
/// # Errors
///
/// See [`steady_state`].
pub fn steady_state_of_graph(
    graph: &ReachabilityGraph,
    opts: &SolverOptions,
) -> Result<SteadyState, PetriError> {
    let solution = solve_graph(graph, &SolutionMethod::Auto, opts)?;
    Ok(solution
        .into_steady_state()
        .expect("analytic backend yields a steady state"))
}

#[cfg(test)]
// Exact float assertions are deliberate here: the expected values are
// produced by the same deterministic arithmetic being tested.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;
    use crate::model::{NetBuilder, ServerSemantics};

    /// M/M/1/K queue: arrivals rate λ while fewer than K jobs, service μ.
    /// Closed form: π_i ∝ ρ^i with ρ = λ/μ.
    fn mm1k(lambda: f64, mu: f64, k: u32) -> Net {
        let mut b = NetBuilder::new("mm1k");
        let free = b.place("free", k);
        let busy = b.place("busy", 0);
        let arrive = b.exponential("arrive", lambda);
        let serve = b.exponential("serve", mu);
        b.input_arc(free, arrive, 1).unwrap();
        b.output_arc(arrive, busy, 1).unwrap();
        b.input_arc(busy, serve, 1).unwrap();
        b.output_arc(serve, free, 1).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn mm1k_matches_closed_form() {
        let (lambda, mu, k) = (0.7, 1.0, 4u32);
        let net = mm1k(lambda, mu, k);
        let ss = steady_state(&net).unwrap();
        let rho: f64 = lambda / mu;
        let norm: f64 = (0..=k).map(|i| rho.powi(i as i32)).sum();
        let busy = net.place_by_name("busy").unwrap();
        for i in 0..=k {
            let expected = rho.powi(i as i32) / norm;
            let got = ss
                .iter()
                .find(|(m, _)| m[busy] == i)
                .map(|(_, p)| p)
                .unwrap();
            assert!((got - expected).abs() < 1e-12, "i={i}: {got} vs {expected}");
        }
    }

    #[test]
    fn erlang_loss_like_model_with_infinite_server() {
        // K independent machines failing at rate λ each and repaired (one at
        // a time) at rate μ: the machine-repair model. Check against direct
        // birth–death closed form:
        //   up i machines: failure rate i λ, repair rate μ (single repairman)
        let (lambda, mu, k) = (0.2, 1.5, 3u32);
        let mut b = NetBuilder::new("machine-repair");
        let up = b.place("up", k);
        let down = b.place("down", 0);
        let fail = b.exponential_with("fail", lambda, ServerSemantics::Infinite);
        let repair = b.exponential("repair", mu);
        b.input_arc(up, fail, 1).unwrap();
        b.output_arc(fail, down, 1).unwrap();
        b.input_arc(down, repair, 1).unwrap();
        b.output_arc(repair, up, 1).unwrap();
        let net = b.build().unwrap();

        // Birth–death on number down: j -> j+1 at (k-j)λ, j -> j-1 at μ.
        let mut unnorm = vec![1.0f64];
        for j in 0..k {
            let birth = f64::from(k - j) * lambda;
            let prev = unnorm[j as usize];
            unnorm.push(prev * birth / mu);
        }
        let norm: f64 = unnorm.iter().sum();

        let ss = steady_state(&net).unwrap();
        let down_p = net.place_by_name("down").unwrap();
        for j in 0..=k {
            let expected = unnorm[j as usize] / norm;
            let got = ss
                .iter()
                .find(|(m, _)| m[down_p] == j)
                .map(|(_, p)| p)
                .unwrap();
            assert!((got - expected).abs() < 1e-12);
        }
    }

    #[test]
    fn sparse_and_dense_paths_agree() {
        let net = mm1k(0.9, 1.3, 60);
        let dense = steady_state_with(
            &net,
            &SolverOptions {
                dense_threshold: 1_000,
                ..SolverOptions::default()
            },
        )
        .unwrap();
        let sparse = steady_state_with(
            &net,
            &SolverOptions {
                dense_threshold: 0,
                ..SolverOptions::default()
            },
        )
        .unwrap();
        assert_eq!(dense.state_count(), sparse.state_count());
        for (a, b) in dense.iter().zip(sparse.iter()) {
            assert_eq!(a.0, b.0);
            assert!((a.1 - b.1).abs() < 1e-9);
        }
    }

    #[test]
    fn probabilities_sum_to_one() {
        let ss = steady_state(&mm1k(0.3, 0.9, 10)).unwrap();
        let total: f64 = ss.iter().map(|(_, p)| p).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn expected_reward_and_marking_lookup() {
        let net = mm1k(1.0, 1.0, 2);
        let ss = steady_state(&net).unwrap();
        let busy = net.place_by_name("busy").unwrap();
        // ρ=1 → uniform over 3 states; E[#busy] = 1.
        let mean_busy = ss.expected_reward(|m| f64::from(m[busy]));
        assert!((mean_busy - 1.0).abs() < 1e-12);
        let p_empty = ss.probability(|m| m[busy] == 0);
        assert!((p_empty - 1.0 / 3.0).abs() < 1e-12);
        let m = Marking::new(vec![2, 0]);
        assert!((ss.probability_of_marking(&m) - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(ss.probability_of_marking(&Marking::new(vec![9, 9])), 0.0);
    }
}
