//! # mvml-petri — a DSPN modelling and analysis engine
//!
//! This crate implements Deterministic and Stochastic Petri Nets (DSPNs) as
//! used by the DSN'25 paper *"Multi-version Machine Learning and Rejuvenation
//! for Resilient Perception in Safety-critical Systems"*. It plays the role
//! that [TimeNET](https://timenet.tu-ilmenau.de/) plays in the paper: build a
//! net, solve it for its steady-state distribution, and evaluate reward
//! (reliability) functions over the markings.
//!
//! ## Model class
//!
//! * **Places** hold non-negative integer token counts.
//! * **Transitions** are *immediate* (fire in zero time, selected by
//!   marking-dependent weights and priorities), *exponential* (fire after an
//!   exponentially distributed delay, with single-/infinite-/k-server
//!   semantics), or *deterministic* (fire after a fixed delay with enabling
//!   memory).
//! * **Arcs** are input, output or inhibitor arcs, each with a weight.
//! * **Guards** are boolean functions of the current marking that gate a
//!   transition's enabling, exactly like TimeNET's enabling functions.
//!
//! ## Solution methods
//!
//! * [`analysis`] — structural (static) verification from the incidence
//!   matrix alone: P/T-invariants, boundedness certificates, dead-transition
//!   and immediate-cycle detection, surfaced via [`Net::analyze`].
//! * [`reach`] — explicit reachability-graph generation with on-the-fly
//!   elimination of *vanishing* markings (markings that enable an immediate
//!   transition).
//! * [`ctmc`] — exact steady-state solution of the embedded continuous-time
//!   Markov chain (dense Gaussian elimination for small chains, Gauss–Seidel
//!   for large sparse ones).
//! * [`erlang`] — phase-type expansion that replaces each deterministic
//!   transition by an Erlang-*k* chain of exponential stages, turning a DSPN
//!   into a (larger) SPN that the CTMC solver handles exactly. The
//!   approximation error vanishes as *k → ∞*; `k = 32` reproduces the paper's
//!   rejuvenation models to well under 0.1%.
//! * [`sim`] — a discrete-event Monte-Carlo simulator with warm-up deletion
//!   and batch-means confidence intervals, used to cross-validate the
//!   analytical solutions (the paper's Table V is itself produced "through
//!   DSPN simulation").
//! * [`solve`] — a [`SolutionMethod`] facade unifying the three backends
//!   (dense / Gauss–Seidel / simulation); every solve reports which backend
//!   ran and its residual via [`SolutionInfo`].
//! * [`verify`] — static model checking of temporal recoverability and
//!   safety properties (AG EF goal, quorum safety, token bounds) over the
//!   untimed reachability graph, combining P-invariants with on-the-fly
//!   exploration; emits witness-path / counterexample certificates via
//!   [`Net::verify`], no CTMC solve required.
//!
//! ## Example
//!
//! A two-state availability model (fail rate λ, repair rate μ) has the
//! closed-form availability μ/(λ+μ):
//!
//! ```
//! use mvml_petri::{NetBuilder, steady_state, ExpectedReward};
//!
//! # fn main() -> Result<(), mvml_petri::PetriError> {
//! let mut b = NetBuilder::new("availability");
//! let up = b.place("up", 1);
//! let down = b.place("down", 0);
//! let fail = b.exponential("fail", 0.01);
//! let repair = b.exponential("repair", 1.0);
//! b.input_arc(up, fail, 1)?;
//! b.output_arc(fail, down, 1)?;
//! b.input_arc(down, repair, 1)?;
//! b.output_arc(repair, up, 1)?;
//! let net = b.build()?;
//!
//! let solution = steady_state(&net)?;
//! let availability = solution.expected_reward(|m| f64::from(m[up]));
//! assert!((availability - 1.0 / 1.01).abs() < 1e-12);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// The solver's expect/unwrap sites are invariants of already-validated
// nets (every fallible path returns `PetriError` at the API boundary);
// panicking on a broken internal invariant is deliberate here.
#![allow(clippy::unwrap_used, clippy::expect_used)]

mod enabling;
mod error;
mod marking;
mod model;

pub mod analysis;
pub mod ctmc;
pub mod erlang;
pub mod linalg;
pub mod reach;
pub mod reward;
pub mod sim;
pub mod solve;
pub mod transient;
pub mod verify;

pub use analysis::{
    analyze_with, AnalysisOptions, Finding, FindingKind, Invariant, Severity, StructuralReport,
};
pub use ctmc::{steady_state, steady_state_with, SolverOptions, SteadyState};
pub use erlang::erlang_expand;
pub use error::PetriError;
pub use marking::Marking;
pub use model::{
    Net, NetBuilder, PlaceId, RateSpec, ServerSemantics, Timing, TransitionId, WeightSpec,
};
pub use reach::{ReachOptions, ReachabilityGraph};
pub use reward::ExpectedReward;
pub use sim::{simulate, SimConfig, SimResult};
pub use solve::{
    solve_graph, solve_steady, solve_steady_traced, Backend, Solution, SolutionInfo, SolutionMethod,
};
pub use transient::{transient, TransientSolution};
pub use verify::{
    verify_with, Certificate, MarkingPredicate, Property, PropertyResult, TraceStep, VerifyOptions,
    VerifyReport,
};
