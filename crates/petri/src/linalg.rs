//! Small linear-algebra helpers for steady-state solution.
//!
//! Two solvers are provided for the global balance equations `πQ = 0`,
//! `Σπ = 1` of an ergodic CTMC:
//!
//! * [`solve_dense`] — exact Gaussian elimination with partial pivoting on
//!   the transposed generator; used for small chains and as the ground truth
//!   in tests.
//! * [`solve_gauss_seidel`] — sparse Gauss–Seidel sweeps; used for the
//!   Erlang-expanded rejuvenation models whose state spaces reach a few
//!   thousand states.

use crate::error::PetriError;

/// A sparse CTMC generator stored as incoming-edge lists.
#[derive(Debug, Clone)]
pub struct SparseGenerator {
    /// `incoming[j]` lists `(i, q_ij)` for `i != j`.
    pub incoming: Vec<Vec<(usize, f64)>>,
    /// Total exit rate of each state (`-q_jj`).
    pub exit: Vec<f64>,
}

impl SparseGenerator {
    /// Builds the incoming-edge representation from outgoing-edge lists.
    pub fn from_outgoing(edges: &[Vec<(usize, f64)>]) -> Self {
        let n = edges.len();
        let mut incoming = vec![Vec::new(); n];
        let mut exit = vec![0.0; n];
        for (i, out) in edges.iter().enumerate() {
            for &(j, r) in out {
                // Self-loops leave the state unchanged and are irrelevant to
                // the stationary distribution of a CTMC.
                if i != j {
                    exit[i] += r;
                    incoming[j].push((i, r));
                }
            }
        }
        SparseGenerator { incoming, exit }
    }

    /// Number of states.
    pub fn len(&self) -> usize {
        self.exit.len()
    }

    /// Returns `true` if the generator has no states.
    pub fn is_empty(&self) -> bool {
        self.exit.is_empty()
    }
}

/// Solves `πQ = 0, Σπ = 1` by dense Gaussian elimination.
///
/// `edges[i]` lists outgoing `(j, q_ij)` pairs.
///
/// # Errors
///
/// Returns [`PetriError::SolverDiverged`] if the system is singular beyond
/// numerical tolerance (e.g. a reducible chain).
pub fn solve_dense(edges: &[Vec<(usize, f64)>]) -> Result<Vec<f64>, PetriError> {
    let n = edges.len();
    if n == 0 {
        return Ok(Vec::new());
    }
    if n == 1 {
        return Ok(vec![1.0]);
    }
    // Build A = Q^T, then overwrite the last row with the normalisation
    // Σπ = 1.  Solve A x = e_last.
    let mut a = vec![0.0f64; n * n];
    for (i, out) in edges.iter().enumerate() {
        let mut exit = 0.0;
        for &(j, r) in out {
            // Self-loops do not change the state; skip them entirely.
            if i != j {
                exit += r;
                a[j * n + i] += r; // A[j][i] = q_ij
            }
        }
        a[i * n + i] -= exit;
    }
    for j in 0..n {
        a[(n - 1) * n + j] = 1.0;
    }
    let mut b = vec![0.0f64; n];
    b[n - 1] = 1.0;

    // Gaussian elimination with partial pivoting.
    for col in 0..n {
        let mut pivot = col;
        let mut best = a[col * n + col].abs();
        for row in (col + 1)..n {
            let v = a[row * n + col].abs();
            if v > best {
                best = v;
                pivot = row;
            }
        }
        if best < 1e-300 {
            return Err(PetriError::SolverDiverged {
                iterations: 0,
                residual: best,
            });
        }
        if pivot != col {
            for k in 0..n {
                a.swap(col * n + k, pivot * n + k);
            }
            b.swap(col, pivot);
        }
        let d = a[col * n + col];
        for row in (col + 1)..n {
            let f = a[row * n + col] / d;
            if f == 0.0 {
                continue;
            }
            for k in col..n {
                a[row * n + k] -= f * a[col * n + k];
            }
            b[row] -= f * b[col];
        }
    }
    let mut x = vec![0.0f64; n];
    for row in (0..n).rev() {
        let mut s = b[row];
        for k in (row + 1)..n {
            s -= a[row * n + k] * x[k];
        }
        x[row] = s / a[row * n + row];
    }
    // Clamp tiny negatives produced by roundoff and renormalise.
    let mut sum = 0.0;
    for v in &mut x {
        if *v < 0.0 && *v > -1e-9 {
            *v = 0.0;
        }
        sum += *v;
    }
    if !(sum.is_finite()) || sum <= 0.0 {
        return Err(PetriError::SolverDiverged {
            iterations: 0,
            residual: sum,
        });
    }
    for v in &mut x {
        *v /= sum;
    }
    Ok(x)
}

/// Solves `πQ = 0, Σπ = 1` by Gauss–Seidel sweeps over the sparse generator.
///
/// # Errors
///
/// Returns [`PetriError::SolverDiverged`] if the residual does not fall
/// below `tol` within `max_sweeps` sweeps, or if an absorbing state (zero
/// exit rate) is present.
pub fn solve_gauss_seidel(
    gen: &SparseGenerator,
    tol: f64,
    max_sweeps: usize,
) -> Result<Vec<f64>, PetriError> {
    let n = gen.len();
    if n == 0 {
        return Ok(Vec::new());
    }
    if n == 1 {
        return Ok(vec![1.0]);
    }
    for (j, &e) in gen.exit.iter().enumerate() {
        if e <= 0.0 {
            return Err(PetriError::InvalidParameter {
                what: format!("state {j} is absorbing; steady state requires an ergodic chain"),
            });
        }
    }
    let mut pi = vec![1.0 / n as f64; n];
    for sweep in 1..=max_sweeps {
        let mut max_rel_change = 0.0f64;
        for j in 0..n {
            let inflow: f64 = gen.incoming[j].iter().map(|&(i, q)| pi[i] * q).sum();
            let new = inflow / gen.exit[j];
            let denom = new.abs().max(1e-300);
            let change = (new - pi[j]).abs() / denom;
            if change > max_rel_change {
                max_rel_change = change;
            }
            pi[j] = new;
        }
        let sum: f64 = pi.iter().sum();
        if sum <= 0.0 || !sum.is_finite() {
            return Err(PetriError::SolverDiverged {
                iterations: sweep,
                residual: sum,
            });
        }
        for v in &mut pi {
            *v /= sum;
        }
        if max_rel_change < tol {
            // Final residual check on the balance equations.
            let residual = balance_residual(gen, &pi);
            if residual < tol.sqrt().max(1e-8) {
                return Ok(pi);
            }
        }
    }
    let residual = balance_residual(gen, &pi);
    if residual < 1e-8 {
        return Ok(pi);
    }
    Err(PetriError::SolverDiverged {
        iterations: max_sweeps,
        residual,
    })
}

/// Maximum absolute violation of the global balance equations, normalised
/// by the largest probability flow in the chain.
///
/// A chain-global accuracy measure suited to *reporting* solution quality:
/// the per-state relative measure of [`balance_residual`] saturates near 1
/// for states of negligible probability (where a direct solver's roundoff
/// dwarfs the state's own tiny flows), even when the distribution is
/// accurate to machine precision everywhere it matters.
pub fn global_balance_residual(gen: &SparseGenerator, pi: &[f64]) -> f64 {
    let mut worst_violation = 0.0f64;
    let mut max_flow = 0.0f64;
    for j in 0..gen.len() {
        let inflow: f64 = gen.incoming[j].iter().map(|&(i, q)| pi[i] * q).sum();
        let outflow = pi[j] * gen.exit[j];
        worst_violation = worst_violation.max((inflow - outflow).abs());
        max_flow = max_flow.max(inflow.abs()).max(outflow.abs());
    }
    if max_flow > 0.0 {
        worst_violation / max_flow
    } else {
        worst_violation
    }
}

/// Maximum per-state *relative* violation of the global balance equations
/// (the iterative solver's convergence criterion).
pub fn balance_residual(gen: &SparseGenerator, pi: &[f64]) -> f64 {
    let mut worst = 0.0f64;
    for j in 0..gen.len() {
        let inflow: f64 = gen.incoming[j].iter().map(|&(i, q)| pi[i] * q).sum();
        let outflow = pi[j] * gen.exit[j];
        let scale = inflow.abs().max(outflow.abs()).max(1e-300);
        let v = (inflow - outflow).abs() / scale;
        if v > worst {
            worst = v;
        }
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two-state chain: 0 -(a)-> 1, 1 -(b)-> 0; π0 = b/(a+b).
    fn two_state(a: f64, b: f64) -> Vec<Vec<(usize, f64)>> {
        vec![vec![(1, a)], vec![(0, b)]]
    }

    #[test]
    fn dense_two_state() {
        let pi = solve_dense(&two_state(0.01, 1.0)).unwrap();
        assert!((pi[0] - 1.0 / 1.01).abs() < 1e-12);
        assert!((pi[1] - 0.01 / 1.01).abs() < 1e-12);
    }

    #[test]
    fn gauss_seidel_matches_dense() {
        // Random-ish 5-state ring with extra chords.
        let edges = vec![
            vec![(1, 2.0), (3, 0.5)],
            vec![(2, 1.0)],
            vec![(3, 4.0), (0, 0.25)],
            vec![(4, 1.5)],
            vec![(0, 3.0), (2, 0.1)],
        ];
        let dense = solve_dense(&edges).unwrap();
        let gs =
            solve_gauss_seidel(&SparseGenerator::from_outgoing(&edges), 1e-14, 100_000).unwrap();
        for (d, g) in dense.iter().zip(&gs) {
            assert!((d - g).abs() < 1e-9, "dense={d} gs={g}");
        }
    }

    #[test]
    fn gauss_seidel_handles_stiff_rates() {
        // Rates spanning seven orders of magnitude (the paper's models mix
        // 1/1523 s⁻¹ compromise rates with 2 s⁻¹ repairs).
        let edges = vec![vec![(1, 6.57e-4)], vec![(2, 6.57e-4)], vec![(0, 2.0)]];
        let dense = solve_dense(&edges).unwrap();
        let gs =
            solve_gauss_seidel(&SparseGenerator::from_outgoing(&edges), 1e-14, 100_000).unwrap();
        for (d, g) in dense.iter().zip(&gs) {
            assert!((d - g).abs() < 1e-10);
        }
    }

    #[test]
    fn singleton_chain() {
        assert_eq!(solve_dense(&[vec![]]).unwrap(), vec![1.0]);
        let gen = SparseGenerator::from_outgoing(&[vec![]]);
        assert_eq!(solve_gauss_seidel(&gen, 1e-12, 10).unwrap(), vec![1.0]);
    }

    #[test]
    fn empty_chain() {
        assert!(solve_dense(&[]).unwrap().is_empty());
        let gen = SparseGenerator::from_outgoing(&[]);
        assert!(gen.is_empty());
        assert!(solve_gauss_seidel(&gen, 1e-12, 10).unwrap().is_empty());
    }

    #[test]
    fn absorbing_state_rejected_by_gs() {
        let edges = vec![vec![(1, 1.0)], vec![]];
        let gen = SparseGenerator::from_outgoing(&edges);
        assert!(matches!(
            solve_gauss_seidel(&gen, 1e-12, 10),
            Err(PetriError::InvalidParameter { .. })
        ));
    }

    #[test]
    fn probabilities_sum_to_one_and_are_nonnegative() {
        let edges = vec![
            vec![(1, 1.0), (2, 2.0)],
            vec![(0, 0.5), (2, 0.5)],
            vec![(0, 1.0)],
        ];
        for pi in [
            solve_dense(&edges).unwrap(),
            solve_gauss_seidel(&SparseGenerator::from_outgoing(&edges), 1e-14, 100_000).unwrap(),
        ] {
            let sum: f64 = pi.iter().sum();
            assert!((sum - 1.0).abs() < 1e-12);
            assert!(pi.iter().all(|&p| p >= 0.0));
        }
    }

    #[test]
    fn global_residual_tracks_solution_quality() {
        let edges = vec![
            vec![(1, 2.0), (3, 0.5)],
            vec![(2, 1.0)],
            vec![(3, 4.0), (0, 0.25)],
            vec![(4, 1.5)],
            vec![(0, 3.0), (2, 0.1)],
        ];
        let gen = SparseGenerator::from_outgoing(&edges);
        let pi = solve_dense(&edges).unwrap();
        assert!(global_balance_residual(&gen, &pi) < 1e-12);
        // A deliberately wrong distribution violates balance badly.
        let uniform = vec![0.2; 5];
        assert!(global_balance_residual(&gen, &uniform) > 1e-2);
        // Degenerate inputs do not divide by zero.
        assert!(global_balance_residual(&gen, &[0.0; 5]) < f64::EPSILON);
    }

    #[test]
    fn self_loops_are_ignored_in_balance() {
        // A self loop contributes to exit and inflow identically; the solver
        // must not double count. Model: q_00 self loop plus real edge.
        let edges = vec![vec![(0, 5.0), (1, 1.0)], vec![(0, 1.0)]];
        let pi = solve_dense(&edges).unwrap();
        // With the self-loop removed this is the symmetric two-state chain…
        // except exit(0) includes the loop. Steady state of a CTMC is
        // invariant under self-loops, so π = (0.5, 0.5).
        assert!((pi[0] - 0.5).abs() < 1e-9, "pi={pi:?}");
    }
}
