//! Transient analysis via uniformisation (Jensen's method).
//!
//! The paper evaluates steady-state reliability only; transient analysis is
//! the natural extension for questions like *"how quickly does expected
//! reliability degrade after deployment, and how does the first
//! rejuvenation bend the curve?"*. Given the CTMC of a (possibly
//! Erlang-expanded) net, the distribution at time `t` is
//!
//! ```text
//! π(t) = Σ_k  PoissonPMF(Λt, k) · π(0) Pᵏ,    P = I + Q/Λ
//! ```
//!
//! with `Λ` at least the maximal exit rate. The series is truncated once
//! the accumulated Poisson mass exceeds `1 − tol`.

use crate::ctmc::SteadyState;
use crate::error::PetriError;
use crate::marking::Marking;
use crate::model::Net;
use crate::reach::{explore, ReachOptions, ReachabilityGraph};
use crate::reward::ExpectedReward;

/// The state distribution of a net at one time point.
#[derive(Debug)]
pub struct TransientSolution {
    markings: Vec<Marking>,
    probs: Vec<f64>,
    /// Marking → state id for O(1) point lookups (mirrors
    /// [`SteadyState::probability_of_marking`]).
    index: std::collections::HashMap<Marking, usize>,
    /// The time the distribution refers to.
    pub time: f64,
}

impl TransientSolution {
    fn new(markings: Vec<Marking>, probs: Vec<f64>, time: f64) -> Self {
        debug_assert_eq!(markings.len(), probs.len());
        let index = markings
            .iter()
            .enumerate()
            .map(|(i, m)| (m.clone(), i))
            .collect();
        TransientSolution {
            markings,
            probs,
            index,
            time,
        }
    }

    /// Iterates over `(marking, probability)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&Marking, f64)> {
        self.markings.iter().zip(self.probs.iter().copied())
    }

    /// Number of tangible markings.
    pub fn state_count(&self) -> usize {
        self.markings.len()
    }

    /// Probability of the exact marking `m` at this time (0 if unreachable).
    pub fn probability_of_marking(&self, m: &Marking) -> f64 {
        self.index.get(m).map_or(0.0, |&i| self.probs[i])
    }
}

impl ExpectedReward for TransientSolution {
    fn expected_reward<F: Fn(&Marking) -> f64>(&self, reward: F) -> f64 {
        self.iter().map(|(m, p)| p * reward(m)).sum()
    }
}

/// Computes the transient distribution of `net` at each time in `times`.
///
/// The net must contain no deterministic transitions (apply
/// [`crate::erlang_expand`] first). Times must be non-negative.
///
/// # Errors
///
/// Propagates reachability errors; returns [`PetriError::InvalidParameter`]
/// for negative times.
pub fn transient(
    net: &Net,
    times: &[f64],
    opts: &ReachOptions,
    tol: f64,
) -> Result<Vec<TransientSolution>, PetriError> {
    let graph = explore(net, opts)?;
    transient_of_graph(&graph, times, tol)
}

/// Computes transient distributions over a pre-computed reachability graph.
///
/// # Errors
///
/// Returns [`PetriError::InvalidParameter`] for negative times or an
/// invalid tolerance.
pub fn transient_of_graph(
    graph: &ReachabilityGraph,
    times: &[f64],
    tol: f64,
) -> Result<Vec<TransientSolution>, PetriError> {
    if !(tol > 0.0 && tol < 1.0) {
        return Err(PetriError::InvalidParameter {
            what: format!("tolerance {tol}"),
        });
    }
    for &t in times {
        if !(t.is_finite() && t >= 0.0) {
            return Err(PetriError::InvalidParameter {
                what: format!("time {t}"),
            });
        }
    }
    let n = graph.state_count();
    // Uniformisation constant: the largest exit rate (self-loops already
    // contribute nothing to off-diagonal movement).
    let lambda = (0..n)
        .map(|s| {
            graph.edges[s]
                .iter()
                .filter(|&&(t, _)| t != s)
                .map(|&(_, r)| r)
                .sum::<f64>()
        })
        .fold(0.0f64, f64::max)
        .max(1e-12)
        * 1.02;

    // DTMC step: v' = v P with P = I + Q/Λ.
    let step = |v: &[f64]| -> Vec<f64> {
        let mut out = vec![0.0f64; n];
        for s in 0..n {
            let mut stay = v[s];
            for &(t, r) in &graph.edges[s] {
                if t == s {
                    continue;
                }
                let p = r / lambda;
                out[t] += v[s] * p;
                stay -= v[s] * p;
            }
            out[s] += stay;
        }
        out
    };

    let mut pi0 = vec![0.0f64; n];
    for &(s, p) in &graph.initial {
        pi0[s] += p;
    }

    let mut solutions = Vec::with_capacity(times.len());
    for &t in times {
        if t == 0.0 {
            solutions.push(TransientSolution::new(
                graph.markings.clone(),
                pi0.clone(),
                t,
            ));
            continue;
        }
        let lt = lambda * t;
        // Poisson weights by forward recursion, with underflow care for
        // large Λt: start from the (scaled) mode.
        let mut acc = vec![0.0f64; n];
        let mut v = pi0.clone();
        let mut log_weight = -lt; // ln PoissonPMF(0)
        let mut cumulative = 0.0f64;
        let mut k = 0usize;
        let k_cap = (lt + 10.0 * lt.sqrt() + 50.0) as usize;
        loop {
            let weight = log_weight.exp();
            if weight > 0.0 {
                for (a, &x) in acc.iter_mut().zip(&v) {
                    *a += weight * x;
                }
                cumulative += weight;
            }
            if cumulative >= 1.0 - tol || k >= k_cap {
                break;
            }
            v = step(&v);
            k += 1;
            log_weight += (lt / k as f64).ln();
        }
        // Renormalise the truncated series.
        let total: f64 = acc.iter().sum();
        if total > 0.0 {
            for a in &mut acc {
                *a /= total;
            }
        }
        solutions.push(TransientSolution::new(graph.markings.clone(), acc, t));
    }
    Ok(solutions)
}

/// Convenience: the transient distribution converges to the steady state;
/// returns the maximum absolute probability gap at time `t`.
pub fn distance_to_steady_state(solution: &TransientSolution, steady: &SteadyState) -> f64 {
    solution
        .iter()
        .map(|(m, p)| (p - steady.probability_of_marking(m)).abs())
        .fold(0.0, f64::max)
}

#[cfg(test)]
// Exact float assertions are deliberate here: the expected values are
// produced by the same deterministic arithmetic being tested.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;
    use crate::ctmc::steady_state;
    use crate::model::NetBuilder;

    fn two_state(fail: f64, repair: f64) -> Net {
        let mut b = NetBuilder::new("avail");
        let up = b.place("up", 1);
        let down = b.place("down", 0);
        let f = b.exponential("fail", fail);
        let r = b.exponential("repair", repair);
        b.input_arc(up, f, 1).unwrap();
        b.output_arc(f, down, 1).unwrap();
        b.input_arc(down, r, 1).unwrap();
        b.output_arc(r, up, 1).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn matches_closed_form_two_state() {
        // Availability A(t) = μ/(λ+μ) + λ/(λ+μ) e^{-(λ+μ)t}, starting up.
        let (l, m) = (0.3, 0.7);
        let net = two_state(l, m);
        let up = net.place_by_name("up").unwrap();
        let times = [0.0, 0.5, 1.0, 2.0, 5.0, 20.0];
        let sols = transient(&net, &times, &ReachOptions::default(), 1e-12).unwrap();
        for sol in &sols {
            let a = sol.probability(|mk| mk[up] == 1);
            let expected = m / (l + m) + l / (l + m) * (-(l + m) * sol.time).exp();
            assert!(
                (a - expected).abs() < 1e-9,
                "t={}: {a} vs {expected}",
                sol.time
            );
        }
    }

    #[test]
    fn converges_to_steady_state() {
        let net = two_state(0.5, 1.5);
        let steady = steady_state(&net).unwrap();
        let sols = transient(&net, &[100.0], &ReachOptions::default(), 1e-12).unwrap();
        assert!(distance_to_steady_state(&sols[0], &steady) < 1e-9);
    }

    #[test]
    fn time_zero_is_initial_distribution() {
        let net = two_state(1.0, 1.0);
        let up = net.place_by_name("up").unwrap();
        let sols = transient(&net, &[0.0], &ReachOptions::default(), 1e-10).unwrap();
        assert_eq!(sols[0].probability(|m| m[up] == 1), 1.0);
        assert_eq!(sols[0].time, 0.0);
        assert_eq!(sols[0].state_count(), 2);
        assert_eq!(
            sols[0].probability_of_marking(&Marking::new(vec![1, 0])),
            1.0
        );
        assert_eq!(
            sols[0].probability_of_marking(&Marking::new(vec![9, 9])),
            0.0
        );
    }

    #[test]
    fn probabilities_remain_normalised() {
        let net = two_state(2.0, 0.1);
        let sols = transient(
            &net,
            &[0.1, 1.0, 10.0, 100.0],
            &ReachOptions::default(),
            1e-10,
        )
        .unwrap();
        for sol in sols {
            let total: f64 = sol.iter().map(|(_, p)| p).sum();
            assert!((total - 1.0).abs() < 1e-9, "t={}: {total}", sol.time);
            assert!(sol.iter().all(|(_, p)| p >= 0.0));
        }
    }

    #[test]
    fn large_lambda_t_is_stable() {
        // Stiff rates and long horizon: log-space Poisson recursion must not
        // underflow to garbage.
        let net = two_state(100.0, 150.0);
        let steady = steady_state(&net).unwrap();
        let sols = transient(&net, &[50.0], &ReachOptions::default(), 1e-10).unwrap();
        assert!(distance_to_steady_state(&sols[0], &steady) < 1e-6);
    }

    #[test]
    fn rejects_bad_arguments() {
        let net = two_state(1.0, 1.0);
        assert!(transient(&net, &[-1.0], &ReachOptions::default(), 1e-10).is_err());
        assert!(transient(&net, &[1.0], &ReachOptions::default(), 0.0).is_err());
        assert!(transient(&net, &[f64::NAN], &ReachOptions::default(), 1e-10).is_err());
    }
}
