//! Shared enabling / firing logic used by both the reachability explorer and
//! the discrete-event simulator.

use crate::marking::Marking;
use crate::model::{Net, ServerSemantics, Timing};

/// Returns `true` if transition `t` is enabled in `marking`.
pub(crate) fn is_enabled(net: &Net, t: usize, marking: &Marking) -> bool {
    let tr = &net.transitions[t];
    for &(p, w) in &tr.inputs {
        if marking.get(p) < w {
            return false;
        }
    }
    for &(p, w) in &tr.inhibitors {
        if marking.get(p) >= w {
            return false;
        }
    }
    if let Some(guard) = &tr.guard {
        if !guard(marking) {
            return false;
        }
    }
    true
}

/// Enabling degree: how many times `t` could fire concurrently from
/// `marking`, ignoring guards and inhibitors (which gate but do not scale).
pub(crate) fn enabling_degree(net: &Net, t: usize, marking: &Marking) -> u32 {
    let tr = &net.transitions[t];
    tr.inputs
        .iter()
        .map(|&(p, w)| marking.get(p) / w)
        .min()
        .unwrap_or(0)
}

/// Effective firing rate of an (enabled) exponential transition in `marking`,
/// taking server semantics into account. Returns `None` for non-exponential
/// transitions.
pub(crate) fn effective_rate(net: &Net, t: usize, marking: &Marking) -> Option<f64> {
    match &net.transitions[t].timing {
        Timing::Exponential { rate, semantics } => {
            let base = rate.eval(marking);
            let degree = match semantics {
                ServerSemantics::Single => 1,
                ServerSemantics::Infinite => enabling_degree(net, t, marking),
                ServerSemantics::KServer(k) => enabling_degree(net, t, marking).min(*k),
            };
            Some(base * f64::from(degree.max(1)))
        }
        _ => None,
    }
}

/// Fires transition `t` from `marking`, producing the successor marking.
///
/// Assumes `t` is enabled; token counts are debited then credited.
pub(crate) fn fire(net: &Net, t: usize, marking: &Marking) -> Marking {
    let tr = &net.transitions[t];
    let mut next = marking.clone();
    for &(p, w) in &tr.inputs {
        next.set(p, next.get(p) - w);
    }
    for &(p, w) in &tr.outputs {
        next.set(p, next.get(p) + w);
    }
    next
}

/// The set of enabled immediate transitions at the *highest* enabled
/// priority, together with their weights in `marking`.
pub(crate) fn enabled_immediates(net: &Net, marking: &Marking) -> Vec<(usize, f64)> {
    let mut best_priority = None;
    let mut result: Vec<(usize, u32, f64)> = Vec::new();
    for (i, tr) in net.transitions.iter().enumerate() {
        if let Timing::Immediate { priority, weight } = &tr.timing {
            if is_enabled(net, i, marking) {
                let w = weight.eval(marking);
                if w > 0.0 {
                    result.push((i, *priority, w));
                    best_priority =
                        Some(best_priority.map_or(*priority, |b: u32| b.max(*priority)));
                }
            }
        }
    }
    let Some(best) = best_priority else {
        return Vec::new();
    };
    result
        .into_iter()
        .filter(|&(_, p, _)| p == best)
        .map(|(i, _, w)| (i, w))
        .collect()
}

/// Enabled timed (exponential or deterministic) transitions in `marking`.
pub(crate) fn enabled_timed(net: &Net, marking: &Marking) -> Vec<usize> {
    net.transitions
        .iter()
        .enumerate()
        .filter(|(_, tr)| !tr.timing.is_immediate())
        .filter(|(i, _)| is_enabled(net, *i, marking))
        .map(|(i, _)| i)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{NetBuilder, ServerSemantics};

    fn simple_net() -> Net {
        // p0(2) --t0(exp, infinite server, rate 0.5)--> p1
        // t1 immediate: p1 -> p0, inhibited by p0 >= 3, guarded p1 >= 1
        let mut b = NetBuilder::new("n");
        let p0 = b.place("p0", 2);
        let p1 = b.place("p1", 0);
        let t0 = b.exponential_with("t0", 0.5, ServerSemantics::Infinite);
        let t1 = b.immediate("t1");
        b.input_arc(p0, t0, 1).unwrap();
        b.output_arc(t0, p1, 1).unwrap();
        b.input_arc(p1, t1, 1).unwrap();
        b.output_arc(t1, p0, 1).unwrap();
        b.inhibitor_arc(p0, t1, 3).unwrap();
        b.guard(t1, |m| m.get(1) >= 1).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn enabling_and_degree() {
        let net = simple_net();
        let m = Marking::new(vec![2, 0]);
        assert!(is_enabled(&net, 0, &m));
        assert!(!is_enabled(&net, 1, &m)); // p1 empty
        assert_eq!(enabling_degree(&net, 0, &m), 2);
        assert_eq!(effective_rate(&net, 0, &m), Some(1.0)); // 0.5 * 2 servers
    }

    #[test]
    fn inhibitor_disables() {
        let net = simple_net();
        let m = Marking::new(vec![3, 1]);
        // guard satisfied (p1 >= 1) but p0 >= 3 inhibits t1
        assert!(!is_enabled(&net, 1, &m));
        let m2 = Marking::new(vec![2, 1]);
        assert!(is_enabled(&net, 1, &m2));
    }

    #[test]
    fn firing_moves_tokens() {
        let net = simple_net();
        let m = Marking::new(vec![2, 0]);
        let m2 = fire(&net, 0, &m);
        assert_eq!(m2.as_slice(), &[1, 1]);
        let m3 = fire(&net, 1, &m2);
        assert_eq!(m3.as_slice(), &[2, 0]);
    }

    #[test]
    fn immediates_respect_priority() {
        let mut b = NetBuilder::new("prio");
        let p = b.place("p", 1);
        let lo = b.immediate_with("lo", 1, 1.0);
        let hi = b.immediate_with("hi", 2, 3.0);
        b.input_arc(p, lo, 1).unwrap();
        b.input_arc(p, hi, 1).unwrap();
        // outputs so build() passes (self-loop)
        b.output_arc(lo, p, 1).unwrap();
        b.output_arc(hi, p, 1).unwrap();
        let net = b.build().unwrap();
        let enabled = enabled_immediates(&net, &Marking::new(vec![1]));
        assert_eq!(enabled, vec![(hi.index(), 3.0)]);
    }

    #[test]
    fn zero_weight_immediate_is_skipped() {
        let mut b = NetBuilder::new("w0");
        let p = b.place("p", 1);
        let t = b.immediate_with("t", 1, 0.0);
        b.input_arc(p, t, 1).unwrap();
        b.output_arc(t, p, 1).unwrap();
        let net = b.build().unwrap();
        assert!(enabled_immediates(&net, &Marking::new(vec![1])).is_empty());
    }

    #[test]
    fn timed_enumeration() {
        let net = simple_net();
        assert_eq!(enabled_timed(&net, &Marking::new(vec![2, 0])), vec![0]);
        assert_eq!(
            enabled_timed(&net, &Marking::new(vec![0, 2])),
            Vec::<usize>::new()
        );
    }
}
