//! Structural (static) analysis of Petri nets.
//!
//! TimeNET-class tools verify a net *before* solving it: token-conservation
//! laws (P-invariants), repetitive firing vectors (T-invariants), structural
//! boundedness certificates, and statically dead transitions are all
//! computable from the incidence matrix alone, without exploring a single
//! marking. This module brings that layer to the `petri` engine so a
//! malformed net is caught at build/certify time instead of silently
//! producing a wrong reachability graph and a wrong reliability number.
//!
//! Entry point: [`Net::analyze`] (or [`analyze_with`] for custom limits),
//! returning a [`StructuralReport`] with machine-readable [`Finding`]s.
//!
//! ## What is checked
//!
//! * **P-invariants** — non-negative integer place weightings `y` with
//!   `yᵀ·C = 0` (where `C` is the incidence matrix), computed by the Farkas
//!   positive-basis algorithm. Every reachable marking `m` then satisfies
//!   `y·m = y·m₀`.
//! * **Structural boundedness** — a place covered by a P-invariant `y`
//!   (i.e. `y[p] > 0`) can never hold more than `⌊y·m₀ / y[p]⌋` tokens; a
//!   net whose places are all covered is structurally bounded, and the
//!   invariant-feasible marking space is finite and enumerable.
//! * **T-invariants** — firing-count vectors `x ≥ 0` with `C·x = 0`; a net
//!   without any T-invariant cannot return to a previous marking, so a
//!   steady-state analysis is doomed (the embedded chain has no recurrent
//!   class reachable from every state).
//! * **Statically dead transitions** — input demand exceeding a structural
//!   token bound, input places that can never be marked (no producer and
//!   empty initially, propagated to a fixpoint), contradictory
//!   input/inhibitor pairs, and — when the invariant-feasible space is small
//!   enough to enumerate — transitions token-disabled in *every* feasible
//!   marking and guards that evaluate to `false` over the entire feasible
//!   space.
//! * **Immediate-transition cycles** — a structural cycle among immediate
//!   transitions risks a vanishing-loop livelock during reachability
//!   elimination; flagged as a warning (the loop may be marking-gated).
//! * **Sanity** — orphan places touched by no arc and immediate transitions
//!   with constant weight zero (permanently disabled).
//!
//! ## Complexity
//!
//! Farkas enumeration of the positive basis is worst-case exponential in the
//! number of places/transitions, but nets that model real systems (tens of
//! places) complete in microseconds; [`AnalysisOptions::max_basis`] caps the
//! intermediate basis defensively. The feasible-space enumeration is capped
//! by [`AnalysisOptions::max_enumeration`] and skipped entirely for nets
//! without a full set of covering invariants.

use crate::marking::Marking;
use crate::model::{Net, Timing, WeightSpec};
use std::fmt;

/// How serious a [`Finding`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Informational: nothing wrong, but worth knowing (e.g. a place with no
    /// boundedness certificate).
    Info,
    /// Suspicious structure that does not invalidate the solution.
    Warning,
    /// The net is malformed: solving it would produce meaningless numbers.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Info => write!(f, "info"),
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// The class of a structural [`Finding`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum FindingKind {
    /// A transition can never fire: its input demand is structurally
    /// unsatisfiable.
    DeadTransition,
    /// A transition's guard is `false` in every invariant-feasible marking.
    DeadGuard,
    /// A transition requires `≥ w` tokens on a place while an inhibitor arc
    /// disables it at `≥ w' ≤ w` tokens on the same place.
    ContradictoryInhibitor,
    /// Immediate transitions form a structural cycle (vanishing-loop
    /// livelock risk during reachability elimination).
    ImmediateCycle,
    /// A place is touched by no input, output or inhibitor arc.
    OrphanPlace,
    /// A place is not covered by any P-invariant, so no structural
    /// boundedness certificate exists for it.
    NoBoundCertificate,
    /// An immediate transition has constant weight zero and is permanently
    /// disabled.
    DisabledImmediate,
    /// The net admits no T-invariant: no firing sequence reproduces a
    /// marking, so no steady state exists.
    NoTInvariant,
}

impl fmt::Display for FindingKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FindingKind::DeadTransition => "dead-transition",
            FindingKind::DeadGuard => "dead-guard",
            FindingKind::ContradictoryInhibitor => "contradictory-inhibitor",
            FindingKind::ImmediateCycle => "immediate-cycle",
            FindingKind::OrphanPlace => "orphan-place",
            FindingKind::NoBoundCertificate => "no-bound-certificate",
            FindingKind::DisabledImmediate => "disabled-immediate",
            FindingKind::NoTInvariant => "no-t-invariant",
        };
        write!(f, "{s}")
    }
}

/// One machine-readable result of the structural analysis.
#[derive(Debug, Clone)]
pub struct Finding {
    /// What was found.
    pub kind: FindingKind,
    /// How serious it is.
    pub severity: Severity,
    /// Names of the places involved.
    pub places: Vec<String>,
    /// Names of the transitions involved.
    pub transitions: Vec<String>,
    /// Supporting weight vector, when one proves the finding (e.g. the
    /// P-invariant whose bound kills a dead transition). Empty otherwise.
    pub witness: Vec<u64>,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}: {}", self.severity, self.kind, self.message)
    }
}

/// A non-negative integer invariant vector.
///
/// For a P-invariant, `weights[p]` is the coefficient of place `p` and
/// `token_sum` the conserved quantity `y·m₀`. For a T-invariant,
/// `weights[t]` is the firing count of transition `t` and `token_sum` is 0.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Invariant {
    /// Coefficient per place (P) or per transition (T), in index order.
    pub weights: Vec<u64>,
    /// Conserved weighted token sum under the initial marking (P-invariants
    /// only; 0 for T-invariants).
    pub token_sum: u64,
}

impl Invariant {
    /// Indices with a non-zero coefficient.
    pub fn support(&self) -> Vec<usize> {
        self.weights
            .iter()
            .enumerate()
            .filter(|&(_, &w)| w > 0)
            .map(|(i, _)| i)
            .collect()
    }

    /// Whether index `i` carries a non-zero coefficient.
    pub fn covers(&self, i: usize) -> bool {
        self.weights.get(i).is_some_and(|&w| w > 0)
    }

    /// The weighted sum `y·m` of a marking under this invariant.
    pub fn weighted_sum(&self, m: &Marking) -> u64 {
        self.weights
            .iter()
            .zip(m.as_slice())
            .map(|(&w, &t)| w * u64::from(t))
            .sum()
    }
}

/// Tunables for [`analyze_with`].
#[derive(Debug, Clone)]
pub struct AnalysisOptions {
    /// Cap on the intermediate Farkas basis; exceeded, invariant computation
    /// stops and the report carries whatever was found (never for nets of
    /// realistic size).
    pub max_basis: usize,
    /// Cap on the invariant-feasible markings enumerated for the dead-guard
    /// and never-enabled checks; beyond it those checks are skipped.
    pub max_enumeration: usize,
}

impl Default for AnalysisOptions {
    fn default() -> Self {
        AnalysisOptions {
            max_basis: 4096,
            max_enumeration: 200_000,
        }
    }
}

/// The result of structural analysis: invariants, bounds and findings.
#[derive(Debug, Clone)]
pub struct StructuralReport {
    /// Name of the analysed net.
    pub net_name: String,
    /// Place names, index-aligned with bounds and invariant weights.
    pub place_names: Vec<String>,
    /// Transition names, index-aligned with T-invariant weights.
    pub transition_names: Vec<String>,
    /// Minimal-support P-invariant basis.
    pub p_invariants: Vec<Invariant>,
    /// Minimal-support T-invariant basis.
    pub t_invariants: Vec<Invariant>,
    /// Structural token bound per place (`None` = no certificate).
    pub place_bounds: Vec<Option<u64>>,
    /// Number of invariant-feasible markings, when the feasible space is
    /// finite and within the enumeration cap. An upper bound on the number
    /// of reachable markings (tangible *and* vanishing).
    pub feasible_markings: Option<u64>,
    /// Everything the analysis flagged, most severe first.
    pub findings: Vec<Finding>,
}

impl StructuralReport {
    /// Findings of exactly `severity`.
    pub fn of_severity(&self, severity: Severity) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(move |f| f.severity == severity)
    }

    /// Number of error-severity findings.
    pub fn error_count(&self) -> usize {
        self.of_severity(Severity::Error).count()
    }

    /// Number of warning-severity findings.
    pub fn warning_count(&self) -> usize {
        self.of_severity(Severity::Warning).count()
    }

    /// `true` when no error-severity finding exists: the net is structurally
    /// sound and safe to solve.
    pub fn is_certified(&self) -> bool {
        self.error_count() == 0
    }

    /// `true` when every place carries a structural token bound.
    pub fn is_structurally_bounded(&self) -> bool {
        self.place_bounds.iter().all(Option::is_some)
    }

    /// One-line-per-error summary, used in error messages.
    pub fn error_summary(&self) -> String {
        self.of_severity(Severity::Error)
            .map(|f| format!("{}: {}", f.kind, f.message))
            .collect::<Vec<_>>()
            .join("; ")
    }
}

impl fmt::Display for StructuralReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "structural report for `{}`: {} places, {} transitions",
            self.net_name,
            self.place_names.len(),
            self.transition_names.len()
        )?;
        writeln!(
            f,
            "  P-invariants: {}, T-invariants: {}, structurally bounded: {}",
            self.p_invariants.len(),
            self.t_invariants.len(),
            self.is_structurally_bounded()
        )?;
        for inv in &self.p_invariants {
            let terms: Vec<String> = inv
                .support()
                .into_iter()
                .map(|p| {
                    if inv.weights[p] == 1 {
                        self.place_names[p].clone()
                    } else {
                        format!("{}·{}", inv.weights[p], self.place_names[p])
                    }
                })
                .collect();
            writeln!(f, "    {} = {}", terms.join(" + "), inv.token_sum)?;
        }
        if let Some(n) = self.feasible_markings {
            writeln!(f, "  invariant-feasible markings: {n}")?;
        }
        if self.findings.is_empty() {
            writeln!(f, "  findings: none")?;
        } else {
            writeln!(
                f,
                "  findings: {} error(s), {} warning(s)",
                self.error_count(),
                self.warning_count()
            )?;
            for finding in &self.findings {
                writeln!(f, "    {finding}")?;
            }
        }
        Ok(())
    }
}

impl Net {
    /// Runs the full structural analysis with default limits.
    pub fn analyze(&self) -> StructuralReport {
        analyze_with(self, &AnalysisOptions::default())
    }
}

/// Runs the full structural analysis with explicit limits.
pub fn analyze_with(net: &Net, opts: &AnalysisOptions) -> StructuralReport {
    let places = net.place_count();
    let transitions = net.transition_count();

    let p_invariants = p_invariants_with(net, opts.max_basis);
    let t_invariants = t_invariants_with(net, opts.max_basis);
    let place_bounds = place_bounds(&p_invariants, places);

    let mut findings: Vec<Finding> = Vec::new();

    // -- Sanity: orphan places (no arc of any kind touches them). ----------
    let mut touched = vec![false; places];
    for tr in &net.transitions {
        for &(p, _) in tr.inputs.iter().chain(&tr.outputs).chain(&tr.inhibitors) {
            touched[p] = true;
        }
    }
    for (p, &t) in touched.iter().enumerate() {
        if !t {
            findings.push(Finding {
                kind: FindingKind::OrphanPlace,
                severity: Severity::Warning,
                places: vec![net.place_names[p].clone()],
                transitions: Vec::new(),
                witness: Vec::new(),
                message: format!(
                    "place `{}` is connected to no arc; its tokens are inert",
                    net.place_names[p]
                ),
            });
        }
    }

    // -- Contradictory input/inhibitor pairs. ------------------------------
    for (t, tr) in net.transitions.iter().enumerate() {
        for &(p, wi) in &tr.inputs {
            for &(ip, wh) in &tr.inhibitors {
                if p == ip && wh <= wi {
                    findings.push(Finding {
                        kind: FindingKind::ContradictoryInhibitor,
                        severity: Severity::Error,
                        places: vec![net.place_names[p].clone()],
                        transitions: vec![net.transitions[t].name.clone()],
                        witness: vec![u64::from(wi), u64::from(wh)],
                        message: format!(
                            "transition `{}` needs ≥ {wi} token(s) on `{}` but is \
                             inhibited at ≥ {wh}; it can never fire",
                            tr.name, net.place_names[p]
                        ),
                    });
                }
            }
        }
    }

    // -- Permanently disabled immediates (constant weight 0). --------------
    for tr in &net.transitions {
        if let Timing::Immediate {
            weight: WeightSpec::Const(w),
            ..
        } = &tr.timing
        {
            if *w <= 0.0 {
                findings.push(Finding {
                    kind: FindingKind::DisabledImmediate,
                    severity: Severity::Warning,
                    places: Vec::new(),
                    transitions: vec![tr.name.clone()],
                    witness: Vec::new(),
                    message: format!(
                        "immediate transition `{}` has constant weight {w}; it is \
                         permanently disabled",
                        tr.name
                    ),
                });
            }
        }
    }

    // -- Dead transitions: invariant bound beats input demand. -------------
    let mut dead = vec![false; transitions];
    for (t, tr) in net.transitions.iter().enumerate() {
        for &(p, w) in &tr.inputs {
            let Some(bound) = place_bounds[p] else {
                continue;
            };
            if u64::from(w) > bound {
                dead[t] = true;
                let witness = p_invariants
                    .iter()
                    .find(|inv| inv.covers(p))
                    .map(|inv| inv.weights.clone())
                    .unwrap_or_default();
                findings.push(Finding {
                    kind: FindingKind::DeadTransition,
                    severity: Severity::Error,
                    places: vec![net.place_names[p].clone()],
                    transitions: vec![tr.name.clone()],
                    witness,
                    message: format!(
                        "transition `{}` needs {w} token(s) on `{}`, but a P-invariant \
                         bounds that place at {bound}",
                        tr.name, net.place_names[p]
                    ),
                });
                break;
            }
        }
    }

    // -- Dead transitions: input place can never be marked (fixpoint). -----
    for t in structurally_unfireable(net) {
        if dead[t] {
            continue;
        }
        dead[t] = true;
        let starved: Vec<String> = net.transitions[t]
            .inputs
            .iter()
            .map(|&(p, _)| net.place_names[p].clone())
            .collect();
        findings.push(Finding {
            kind: FindingKind::DeadTransition,
            severity: Severity::Error,
            places: starved,
            transitions: vec![net.transitions[t].name.clone()],
            witness: Vec::new(),
            message: format!(
                "transition `{}` consumes from a place that is empty initially and \
                 is fed by no fireable transition",
                net.transitions[t].name
            ),
        });
    }

    // -- Exhaustive checks over the invariant-feasible marking space. ------
    let feasible = enumerate_feasible(net, &p_invariants, &place_bounds, opts.max_enumeration);
    if let Some(feasible) = &feasible {
        for (t, tr) in net.transitions.iter().enumerate() {
            if dead[t] {
                continue;
            }
            let mut token_enabled_somewhere = false;
            let mut guard_true_somewhere = tr.guard.is_none();
            for m in feasible {
                if !token_enabled(net, t, m) {
                    continue;
                }
                token_enabled_somewhere = true;
                if let Some(guard) = &tr.guard {
                    if guard(m) {
                        guard_true_somewhere = true;
                    }
                }
                if guard_true_somewhere {
                    break;
                }
            }
            if !token_enabled_somewhere {
                dead[t] = true;
                findings.push(Finding {
                    kind: FindingKind::DeadTransition,
                    severity: Severity::Error,
                    places: Vec::new(),
                    transitions: vec![tr.name.clone()],
                    witness: Vec::new(),
                    message: format!(
                        "transition `{}` is token-disabled in every one of the {} \
                         invariant-feasible markings",
                        tr.name,
                        feasible.len()
                    ),
                });
            } else if !guard_true_somewhere {
                dead[t] = true;
                findings.push(Finding {
                    kind: FindingKind::DeadGuard,
                    severity: Severity::Error,
                    places: Vec::new(),
                    transitions: vec![tr.name.clone()],
                    witness: Vec::new(),
                    message: format!(
                        "guard of transition `{}` is false over the entire \
                         invariant-feasible marking space ({} markings)",
                        tr.name,
                        feasible.len()
                    ),
                });
            }
        }
    }

    // -- Structural immediate-transition cycles. ---------------------------
    if let Some(cycle) = immediate_cycle(net, &dead) {
        let names: Vec<String> = cycle
            .iter()
            .map(|&t| net.transitions[t].name.clone())
            .collect();
        findings.push(Finding {
            kind: FindingKind::ImmediateCycle,
            severity: Severity::Warning,
            places: Vec::new(),
            transitions: names.clone(),
            witness: cycle.iter().map(|&t| t as u64).collect(),
            message: format!(
                "immediate transitions form a structural cycle ({}); if token-enabled \
                 together this is a vanishing-loop livelock",
                names.join(" → ")
            ),
        });
    }

    // -- Coverage / certificates. ------------------------------------------
    for (p, bound) in place_bounds.iter().enumerate() {
        if bound.is_none() {
            findings.push(Finding {
                kind: FindingKind::NoBoundCertificate,
                severity: Severity::Info,
                places: vec![net.place_names[p].clone()],
                transitions: Vec::new(),
                witness: Vec::new(),
                message: format!(
                    "place `{}` is not covered by any P-invariant; no structural \
                     boundedness certificate",
                    net.place_names[p]
                ),
            });
        }
    }
    if t_invariants.is_empty() && transitions > 0 {
        findings.push(Finding {
            kind: FindingKind::NoTInvariant,
            severity: Severity::Warning,
            places: Vec::new(),
            transitions: Vec::new(),
            witness: Vec::new(),
            message: "net admits no T-invariant: no firing sequence reproduces a marking, \
                      so a steady state cannot exist"
                .to_string(),
        });
    }

    findings.sort_by_key(|f| std::cmp::Reverse(f.severity));

    StructuralReport {
        net_name: net.name.clone(),
        place_names: net.place_names.clone(),
        transition_names: net.transitions.iter().map(|t| t.name.clone()).collect(),
        p_invariants,
        t_invariants,
        place_bounds,
        feasible_markings: feasible.map(|f| f.len() as u64),
        findings,
    }
}

/// The incidence matrix `C[p][t] = W(t→p) − W(p→t)`, stored row-major by
/// place. Inhibitor arcs do not move tokens and are excluded.
pub fn incidence(net: &Net) -> Vec<Vec<i64>> {
    let mut c = vec![vec![0i64; net.transition_count()]; net.place_count()];
    for (t, tr) in net.transitions.iter().enumerate() {
        for &(p, w) in &tr.inputs {
            c[p][t] -= i64::from(w);
        }
        for &(p, w) in &tr.outputs {
            c[p][t] += i64::from(w);
        }
    }
    c
}

/// Minimal-support P-invariant basis (`yᵀ·C = 0`, `y ≥ 0`, integer).
pub fn p_invariants(net: &Net) -> Vec<Invariant> {
    p_invariants_with(net, AnalysisOptions::default().max_basis)
}

fn p_invariants_with(net: &Net, max_basis: usize) -> Vec<Invariant> {
    let c = incidence(net);
    let m0 = net.initial.as_slice();
    farkas(&c, max_basis)
        .into_iter()
        .map(|weights| {
            let token_sum = weights
                .iter()
                .zip(m0)
                .map(|(&w, &t)| w * u64::from(t))
                .sum();
            Invariant { weights, token_sum }
        })
        .collect()
}

/// Minimal-support T-invariant basis (`C·x = 0`, `x ≥ 0`, integer).
pub fn t_invariants(net: &Net) -> Vec<Invariant> {
    t_invariants_with(net, AnalysisOptions::default().max_basis)
}

fn t_invariants_with(net: &Net, max_basis: usize) -> Vec<Invariant> {
    let c = incidence(net);
    let places = net.place_count();
    let transitions = net.transition_count();
    // Transpose: rows become transitions.
    let ct: Vec<Vec<i64>> = (0..transitions)
        .map(|t| (0..places).map(|p| c[p][t]).collect())
        .collect();
    farkas(&ct, max_basis)
        .into_iter()
        .map(|weights| Invariant {
            weights,
            token_sum: 0,
        })
        .collect()
}

/// Farkas positive-basis algorithm: all minimal-support non-negative integer
/// row vectors `y` with `y·M = 0`, for `M` given as `rows × cols`.
fn farkas(m: &[Vec<i64>], max_basis: usize) -> Vec<Vec<u64>> {
    let rows = m.len();
    let cols = m.first().map_or(0, Vec::len);
    // Each basis row is (combination · M, combination): the identity part
    // tracks which original rows were mixed with which coefficients.
    let mut basis: Vec<(Vec<i128>, Vec<i128>)> = (0..rows)
        .map(|r| {
            let mat: Vec<i128> = m[r].iter().map(|&v| i128::from(v)).collect();
            let mut id = vec![0i128; rows];
            id[r] = 1;
            (mat, id)
        })
        .collect();

    for col in 0..cols {
        let mut next: Vec<(Vec<i128>, Vec<i128>)> = Vec::new();
        let (zeros, actives): (Vec<_>, Vec<_>) =
            basis.into_iter().partition(|(mat, _)| mat[col] == 0);
        next.extend(zeros);
        let positives: Vec<&(Vec<i128>, Vec<i128>)> =
            actives.iter().filter(|(mat, _)| mat[col] > 0).collect();
        let negatives: Vec<&(Vec<i128>, Vec<i128>)> =
            actives.iter().filter(|(mat, _)| mat[col] < 0).collect();
        for (pm, pid) in &positives {
            for (nm, nid) in &negatives {
                let a = pm[col];
                let b = -nm[col];
                let mut mat: Vec<i128> = pm
                    .iter()
                    .zip(nm.iter())
                    .map(|(&x, &y)| b * x + a * y)
                    .collect();
                let mut id: Vec<i128> = pid
                    .iter()
                    .zip(nid.iter())
                    .map(|(&x, &y)| b * x + a * y)
                    .collect();
                normalise(&mut mat, &mut id);
                if !next.iter().any(|(_, existing)| existing == &id) {
                    next.push((mat, id));
                }
                if next.len() > max_basis {
                    // Defensive cap: a partial basis would contain vectors
                    // that are not yet annulled, so report none at all.
                    return Vec::new();
                }
            }
        }
        basis = next;
    }
    minimise(&basis)
}

/// Divides a combined Farkas row by the gcd of all its entries.
fn normalise(mat: &mut [i128], id: &mut [i128]) {
    let mut g: i128 = 0;
    for &v in mat.iter().chain(id.iter()) {
        g = gcd(g, v.abs());
    }
    if g > 1 {
        for v in mat.iter_mut().chain(id.iter_mut()) {
            *v /= g;
        }
    }
}

fn gcd(a: i128, b: i128) -> i128 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

/// Keeps only minimal-support, deduplicated invariant vectors.
fn minimise(basis: &[(Vec<i128>, Vec<i128>)]) -> Vec<Vec<u64>> {
    let supports: Vec<Vec<bool>> = basis
        .iter()
        .map(|(_, id)| id.iter().map(|&v| v != 0).collect())
        .collect();
    let mut keep: Vec<Vec<u64>> = Vec::new();
    'candidate: for (i, (_, id)) in basis.iter().enumerate() {
        for (j, other) in supports.iter().enumerate() {
            if i != j
                && supports[i]
                    .iter()
                    .zip(other)
                    .all(|(&mine, &theirs)| !theirs || mine)
                && supports[i] != *other
            {
                // `other` has strictly smaller support: drop this candidate.
                continue 'candidate;
            }
        }
        let as_u64: Vec<u64> = id.iter().map(|&v| v.unsigned_abs() as u64).collect();
        if as_u64.iter().all(|&v| v == 0) {
            continue;
        }
        if !keep.contains(&as_u64) {
            keep.push(as_u64);
        }
    }
    keep
}

/// Structural token bound per place from covering P-invariants:
/// `min over {y : y[p] > 0} of ⌊y·m₀ / y[p]⌋`.
///
/// `None` for places no invariant covers (structurally unbounded as far as
/// the invariant basis can tell). [`crate::verify`] uses these bounds as
/// zero-exploration certificates for token-bound properties.
pub fn place_bounds(invariants: &[Invariant], places: usize) -> Vec<Option<u64>> {
    (0..places)
        .map(|p| {
            invariants
                .iter()
                .filter(|inv| inv.covers(p))
                .map(|inv| inv.token_sum / inv.weights[p])
                .min()
        })
        .collect()
}

/// Transitions that can provably never fire because an input place is empty
/// initially and fed by no (transitively) fireable transition.
fn structurally_unfireable(net: &Net) -> Vec<usize> {
    let mut maybe_marked: Vec<bool> = net.initial.as_slice().iter().map(|&t| t > 0).collect();
    let mut maybe_fires = vec![false; net.transition_count()];
    loop {
        let mut changed = false;
        for (t, tr) in net.transitions.iter().enumerate() {
            if maybe_fires[t] {
                continue;
            }
            if tr.inputs.iter().all(|&(p, _)| maybe_marked[p]) {
                maybe_fires[t] = true;
                changed = true;
                for &(p, _) in &tr.outputs {
                    maybe_marked[p] = true;
                }
            }
        }
        if !changed {
            break;
        }
    }
    (0..net.transition_count())
        .filter(|&t| !maybe_fires[t])
        .collect()
}

/// Token-level enabling (input and inhibitor arcs only; guards excluded).
fn token_enabled(net: &Net, t: usize, m: &Marking) -> bool {
    let tr = &net.transitions[t];
    tr.inputs.iter().all(|&(p, w)| m.as_slice()[p] >= w)
        && tr.inhibitors.iter().all(|&(p, w)| m.as_slice()[p] < w)
}

/// Enumerates every marking satisfying all P-invariant equations, when the
/// space is finite (every place bounded) and below `cap`.
fn enumerate_feasible(
    net: &Net,
    invariants: &[Invariant],
    bounds: &[Option<u64>],
    cap: usize,
) -> Option<Vec<Marking>> {
    let places = net.place_count();
    if places == 0 || invariants.is_empty() {
        return None;
    }
    let bounds: Option<Vec<u64>> = bounds.iter().copied().collect();
    let bounds = bounds?;
    // Quick size screen before the DFS: the box spanned by the bounds gives
    // an easy over-estimate; refuse to walk a space vastly beyond the cap.
    let mut size: u128 = 1;
    for &b in &bounds {
        size = size.saturating_mul(u128::from(b) + 1);
    }
    if size > (cap as u128) * 64 {
        return None;
    }
    // Max contribution each invariant can still pick up from places ≥ p.
    let suffix_max: Vec<Vec<u64>> = invariants
        .iter()
        .map(|inv| {
            let mut s = vec![0u64; places + 1];
            for p in (0..places).rev() {
                s[p] = s[p + 1] + inv.weights[p] * bounds[p];
            }
            s
        })
        .collect();

    let mut out: Vec<Marking> = Vec::new();
    let mut current = vec![0u32; places];
    let mut sums = vec![0u64; invariants.len()];
    let mut overflow = false;
    dfs(
        invariants,
        &bounds,
        &suffix_max,
        0,
        &mut current,
        &mut sums,
        &mut out,
        cap,
        &mut overflow,
    );
    if overflow {
        None
    } else {
        Some(out)
    }
}

#[allow(clippy::too_many_arguments)]
fn dfs(
    invariants: &[Invariant],
    bounds: &[u64],
    suffix_max: &[Vec<u64>],
    p: usize,
    current: &mut Vec<u32>,
    sums: &mut Vec<u64>,
    out: &mut Vec<Marking>,
    cap: usize,
    overflow: &mut bool,
) {
    if *overflow {
        return;
    }
    if p == bounds.len() {
        if invariants
            .iter()
            .zip(sums.iter())
            .all(|(inv, &s)| s == inv.token_sum)
        {
            if out.len() >= cap {
                *overflow = true;
                return;
            }
            out.push(Marking::new(current.clone()));
        }
        return;
    }
    for tokens in 0..=bounds[p] {
        // Prune: no invariant may overshoot its target (monotone in
        // `tokens`, so stop the loop), nor become unreachable given the
        // maximum the remaining places can still add (try more tokens).
        let mut overshoot = false;
        let mut unreachable = false;
        for (i, inv) in invariants.iter().enumerate() {
            let s = sums[i] + inv.weights[p] * tokens;
            if s > inv.token_sum {
                overshoot = true;
                break;
            }
            if s + suffix_max[i][p + 1] < inv.token_sum {
                unreachable = true;
            }
        }
        if overshoot {
            break;
        }
        if unreachable {
            continue;
        }
        current[p] = tokens as u32;
        for (i, inv) in invariants.iter().enumerate() {
            sums[i] += inv.weights[p] * tokens;
        }
        dfs(
            invariants,
            bounds,
            suffix_max,
            p + 1,
            current,
            sums,
            out,
            cap,
            overflow,
        );
        for (i, inv) in invariants.iter().enumerate() {
            sums[i] -= inv.weights[p] * tokens;
        }
        current[p] = 0;
    }
}

/// Finds one structural cycle among live immediate transitions, if any:
/// `t → u` when an output place of `t` is an input place of `u`.
fn immediate_cycle(net: &Net, dead: &[bool]) -> Option<Vec<usize>> {
    let n = net.transition_count();
    let immediate: Vec<bool> = net
        .transitions
        .iter()
        .enumerate()
        .map(|(t, tr)| tr.timing.is_immediate() && !dead[t])
        .collect();
    let mut succ: Vec<Vec<usize>> = vec![Vec::new(); n];
    for t in 0..n {
        if !immediate[t] {
            continue;
        }
        for &(p, _) in &net.transitions[t].outputs {
            for (u, tr) in net.transitions.iter().enumerate() {
                if immediate[u] && tr.inputs.iter().any(|&(ip, _)| ip == p) {
                    succ[t].push(u);
                }
            }
        }
    }
    // Iterative DFS with colors; reconstruct the cycle from the stack.
    #[derive(Clone, Copy, PartialEq)]
    enum Color {
        White,
        Gray,
        Black,
    }
    let mut color = vec![Color::White; n];
    for start in 0..n {
        if !immediate[start] || color[start] != Color::White {
            continue;
        }
        let mut path: Vec<(usize, usize)> = vec![(start, 0)];
        color[start] = Color::Gray;
        while let Some(&mut (node, ref mut next)) = path.last_mut() {
            if *next < succ[node].len() {
                let child = succ[node][*next];
                *next += 1;
                match color[child] {
                    Color::Gray => {
                        let pos = path.iter().position(|&(v, _)| v == child).expect("on path");
                        return Some(path[pos..].iter().map(|&(v, _)| v).collect());
                    }
                    Color::White => {
                        color[child] = Color::Gray;
                        path.push((child, 0));
                    }
                    Color::Black => {}
                }
            } else {
                color[node] = Color::Black;
                path.pop();
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::NetBuilder;

    /// A conservative 3-place ring: one token circulating H → C → F → H.
    fn ring() -> Net {
        let mut b = NetBuilder::new("ring");
        let h = b.place("H", 1);
        let c = b.place("C", 0);
        let f = b.place("F", 0);
        let t1 = b.exponential("t1", 1.0);
        let t2 = b.exponential("t2", 2.0);
        let t3 = b.exponential("t3", 3.0);
        b.input_arc(h, t1, 1).unwrap();
        b.output_arc(t1, c, 1).unwrap();
        b.input_arc(c, t2, 1).unwrap();
        b.output_arc(t2, f, 1).unwrap();
        b.input_arc(f, t3, 1).unwrap();
        b.output_arc(t3, h, 1).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn ring_invariants_and_bounds() {
        let report = ring().analyze();
        assert!(report.is_certified(), "{report}");
        assert_eq!(report.p_invariants.len(), 1);
        assert_eq!(report.p_invariants[0].weights, vec![1, 1, 1]);
        assert_eq!(report.p_invariants[0].token_sum, 1);
        assert_eq!(report.t_invariants.len(), 1);
        assert_eq!(report.t_invariants[0].weights, vec![1, 1, 1]);
        assert!(report.is_structurally_bounded());
        assert_eq!(report.place_bounds, vec![Some(1), Some(1), Some(1)]);
        // Exactly the 3 one-token markings are feasible.
        assert_eq!(report.feasible_markings, Some(3));
        assert_eq!(report.error_count(), 0);
        assert_eq!(report.warning_count(), 0);
    }

    /// Producer/consumer through a bounded buffer with a free-slot semaphore.
    fn producer_consumer(slots: u32) -> Net {
        let mut b = NetBuilder::new("prodcons");
        let idle_p = b.place("producer_idle", 1);
        let busy_p = b.place("producer_busy", 0);
        let buffer = b.place("buffer", 0);
        let free = b.place("free_slots", slots);
        let idle_c = b.place("consumer_idle", 1);
        let busy_c = b.place("consumer_busy", 0);
        let produce = b.exponential("produce", 1.0);
        let put = b.exponential("put", 5.0);
        let take = b.exponential("take", 4.0);
        let consume = b.exponential("consume", 2.0);
        b.input_arc(idle_p, produce, 1).unwrap();
        b.output_arc(produce, busy_p, 1).unwrap();
        b.input_arc(busy_p, put, 1).unwrap();
        b.input_arc(free, put, 1).unwrap();
        b.output_arc(put, buffer, 1).unwrap();
        b.output_arc(put, idle_p, 1).unwrap();
        b.input_arc(buffer, take, 1).unwrap();
        b.input_arc(idle_c, take, 1).unwrap();
        b.output_arc(take, busy_c, 1).unwrap();
        b.output_arc(take, free, 1).unwrap();
        b.input_arc(busy_c, consume, 1).unwrap();
        b.output_arc(consume, idle_c, 1).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn producer_consumer_invariants() {
        let net = producer_consumer(3);
        let report = net.analyze();
        assert!(report.is_certified(), "{report}");
        assert!(report.is_structurally_bounded());
        // Three conservation laws: producer cycle, consumer cycle, and
        // buffer + free_slots = capacity.
        assert_eq!(report.p_invariants.len(), 3, "{report}");
        let buffer = net.place_by_name("buffer").unwrap().index();
        let free = net.place_by_name("free_slots").unwrap().index();
        let cap_law = report
            .p_invariants
            .iter()
            .find(|inv| inv.covers(buffer) && inv.covers(free))
            .expect("buffer conservation law");
        assert_eq!(cap_law.token_sum, 3);
        assert_eq!(report.place_bounds[buffer], Some(3));
        // The full cycle is a T-invariant.
        assert!(!report.t_invariants.is_empty());
    }

    #[test]
    fn weighted_invariant_found() {
        // 2·t moves: A --(2)--> t --(1)--> B means 1·A + 2·B invariant.
        let mut b = NetBuilder::new("weighted");
        let a = b.place("A", 4);
        let pb = b.place("B", 0);
        let t = b.exponential("t", 1.0);
        let back = b.exponential("back", 1.0);
        b.input_arc(a, t, 2).unwrap();
        b.output_arc(t, pb, 1).unwrap();
        b.input_arc(pb, back, 1).unwrap();
        b.output_arc(back, a, 2).unwrap();
        let report = b.build().unwrap().analyze();
        assert_eq!(report.p_invariants.len(), 1);
        assert_eq!(report.p_invariants[0].weights, vec![1, 2]);
        assert_eq!(report.p_invariants[0].token_sum, 4);
        assert_eq!(report.place_bounds, vec![Some(4), Some(2)]);
    }

    #[test]
    fn dead_transition_by_invariant_bound_flagged() {
        // Ring holds 1 token but `greedy` demands 2 from H: statically dead.
        let mut b = NetBuilder::new("dead");
        let h = b.place("H", 1);
        let c = b.place("C", 0);
        let t1 = b.exponential("t1", 1.0);
        let t2 = b.exponential("t2", 1.0);
        let greedy = b.exponential("greedy", 1.0);
        b.input_arc(h, t1, 1).unwrap();
        b.output_arc(t1, c, 1).unwrap();
        b.input_arc(c, t2, 1).unwrap();
        b.output_arc(t2, h, 1).unwrap();
        b.input_arc(h, greedy, 2).unwrap();
        b.output_arc(greedy, c, 2).unwrap();
        let report = b.build().unwrap().analyze();
        assert!(!report.is_certified());
        let dead: Vec<&Finding> = report
            .findings
            .iter()
            .filter(|f| f.kind == FindingKind::DeadTransition)
            .collect();
        assert_eq!(dead.len(), 1);
        assert_eq!(dead[0].transitions, vec!["greedy".to_string()]);
        assert!(!dead[0].witness.is_empty(), "carries the invariant witness");
    }

    #[test]
    fn dead_transition_by_starved_input_flagged() {
        // `never` consumes from a place that is empty and never fed.
        let mut b = NetBuilder::new("starved");
        let p = b.place("p", 1);
        let q = b.place("q", 0);
        let empty = b.place("empty", 0);
        let sink = b.place("sink", 0);
        let live = b.exponential("live", 1.0);
        let back = b.exponential("back", 1.0);
        let never = b.exponential("never", 1.0);
        b.input_arc(p, live, 1).unwrap();
        b.output_arc(live, q, 1).unwrap();
        b.input_arc(q, back, 1).unwrap();
        b.output_arc(back, p, 1).unwrap();
        b.input_arc(empty, never, 1).unwrap();
        b.output_arc(never, sink, 1).unwrap();
        let report = b.build().unwrap().analyze();
        assert!(!report.is_certified());
        assert!(report
            .findings
            .iter()
            .any(|f| f.kind == FindingKind::DeadTransition
                && f.transitions == vec!["never".to_string()]));
    }

    #[test]
    fn contradictory_inhibitor_flagged_by_analysis() {
        let mut b = NetBuilder::new("contra");
        let p = b.place("p", 1);
        let q = b.place("q", 0);
        let t = b.exponential("t", 1.0);
        let back = b.exponential("back", 1.0);
        b.input_arc(p, t, 1).unwrap();
        b.output_arc(t, q, 1).unwrap();
        b.input_arc(q, back, 1).unwrap();
        b.output_arc(back, p, 1).unwrap();
        // Needs ≥1 token on p, inhibited at ≥1 token on p: impossible.
        b.inhibitor_arc(p, t, 1).unwrap();
        let net = b.build_unchecked();
        let report = net.analyze();
        assert!(report.findings.iter().any(
            |f| f.kind == FindingKind::ContradictoryInhibitor && f.severity == Severity::Error
        ));
    }

    #[test]
    fn dead_guard_flagged_over_feasible_space() {
        let mut b = NetBuilder::new("deadguard");
        let h = b.place("H", 2);
        let c = b.place("C", 0);
        let t1 = b.exponential("t1", 1.0);
        let t2 = b.exponential("t2", 1.0);
        let guarded = b.exponential("guarded", 1.0);
        b.input_arc(h, t1, 1).unwrap();
        b.output_arc(t1, c, 1).unwrap();
        b.input_arc(c, t2, 1).unwrap();
        b.output_arc(t2, h, 1).unwrap();
        b.input_arc(h, guarded, 1).unwrap();
        b.output_arc(guarded, c, 1).unwrap();
        // Impossible: H + C = 2 always, so H can never reach 5.
        b.guard(guarded, |m: &Marking| m.as_slice()[0] >= 5)
            .unwrap();
        let report = b.build().unwrap().analyze();
        assert!(!report.is_certified());
        assert!(report
            .findings
            .iter()
            .any(|f| f.kind == FindingKind::DeadGuard
                && f.transitions == vec!["guarded".to_string()]));
    }

    #[test]
    fn satisfiable_guard_not_flagged() {
        let mut b = NetBuilder::new("okguard");
        let h = b.place("H", 2);
        let c = b.place("C", 0);
        let t1 = b.exponential("t1", 1.0);
        let t2 = b.exponential("t2", 1.0);
        b.input_arc(h, t1, 1).unwrap();
        b.output_arc(t1, c, 1).unwrap();
        b.input_arc(c, t2, 1).unwrap();
        b.output_arc(t2, h, 1).unwrap();
        b.guard(t1, |m: &Marking| m.as_slice()[0] >= 2).unwrap();
        let report = b.build().unwrap().analyze();
        assert!(report.is_certified(), "{report}");
    }

    #[test]
    fn immediate_cycle_flagged_as_warning() {
        let mut b = NetBuilder::new("icycle");
        let p0 = b.place("p0", 1);
        let p1 = b.place("p1", 0);
        let a = b.immediate("a");
        let z = b.immediate("z");
        b.input_arc(p0, a, 1).unwrap();
        b.output_arc(a, p1, 1).unwrap();
        b.input_arc(p1, z, 1).unwrap();
        b.output_arc(z, p0, 1).unwrap();
        let report = b.build().unwrap().analyze();
        let cycle = report
            .findings
            .iter()
            .find(|f| f.kind == FindingKind::ImmediateCycle)
            .expect("cycle finding");
        assert_eq!(cycle.severity, Severity::Warning);
        assert_eq!(cycle.transitions.len(), 2);
        assert_eq!(cycle.witness.len(), 2);
    }

    #[test]
    fn orphan_place_and_disabled_immediate_flagged() {
        let mut b = NetBuilder::new("sanity");
        let p = b.place("p", 1);
        let _orphan = b.place("orphan", 2);
        let q = b.place("q", 0);
        let t = b.immediate_with("t", 1, 0.0);
        let back = b.exponential("back", 1.0);
        b.input_arc(p, t, 1).unwrap();
        b.output_arc(t, q, 1).unwrap();
        b.input_arc(q, back, 1).unwrap();
        b.output_arc(back, p, 1).unwrap();
        let report = b.build().unwrap().analyze();
        assert!(report
            .findings
            .iter()
            .any(|f| f.kind == FindingKind::OrphanPlace));
        assert!(report
            .findings
            .iter()
            .any(|f| f.kind == FindingKind::DisabledImmediate));
    }

    #[test]
    fn uncovered_place_reported_without_error() {
        // `counter` only ever gains tokens: not covered by any P-invariant.
        let mut b = NetBuilder::new("unbounded");
        let p = b.place("p", 1);
        let q = b.place("q", 0);
        let counter = b.place("counter", 0);
        let t = b.exponential("t", 1.0);
        let back = b.exponential("back", 1.0);
        b.input_arc(p, t, 1).unwrap();
        b.output_arc(t, q, 1).unwrap();
        b.output_arc(t, counter, 1).unwrap();
        b.input_arc(q, back, 1).unwrap();
        b.output_arc(back, p, 1).unwrap();
        let report = b.build().unwrap().analyze();
        assert!(report.is_certified(), "{report}");
        assert!(!report.is_structurally_bounded());
        let counter_i = counter.index();
        assert_eq!(report.place_bounds[counter_i], None);
        assert!(report
            .findings
            .iter()
            .any(|f| f.kind == FindingKind::NoBoundCertificate
                && f.places == vec!["counter".to_string()]));
        // Enumeration must be skipped: the feasible space is infinite.
        assert_eq!(report.feasible_markings, None);
    }

    #[test]
    fn acyclic_net_gets_no_t_invariant_warning() {
        let mut b = NetBuilder::new("oneway");
        let p = b.place("p", 1);
        let q = b.place("q", 0);
        let t = b.exponential("t", 1.0);
        b.input_arc(p, t, 1).unwrap();
        b.output_arc(t, q, 1).unwrap();
        let report = b.build().unwrap().analyze();
        assert!(report
            .findings
            .iter()
            .any(|f| f.kind == FindingKind::NoTInvariant));
        assert!(report.t_invariants.is_empty());
    }

    #[test]
    fn invariant_helpers() {
        let inv = Invariant {
            weights: vec![1, 0, 2],
            token_sum: 3,
        };
        assert_eq!(inv.support(), vec![0, 2]);
        assert!(inv.covers(2) && !inv.covers(1));
        assert_eq!(inv.weighted_sum(&Marking::new(vec![1, 7, 1])), 3);
    }

    #[test]
    fn incidence_matrix_shape_and_signs() {
        let net = ring();
        let c = incidence(&net);
        assert_eq!(c.len(), 3);
        assert_eq!(c[0], vec![-1, 0, 1]); // H: consumed by t1, fed by t3
        assert_eq!(c[1], vec![1, -1, 0]);
        assert_eq!(c[2], vec![0, 1, -1]);
    }

    #[test]
    fn display_renders_report() {
        let report = ring().analyze();
        let text = report.to_string();
        assert!(text.contains("structural report"));
        assert!(text.contains("H + C + F = 1"));
        assert!(text.contains("findings: none"));
        assert!(Severity::Error.to_string() == "error");
        assert!(FindingKind::DeadGuard.to_string() == "dead-guard");
    }

    #[test]
    fn severity_ordering_puts_errors_first() {
        assert!(Severity::Error > Severity::Warning);
        assert!(Severity::Warning > Severity::Info);
    }
}
