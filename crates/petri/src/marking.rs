//! Token markings.

use crate::model::PlaceId;
use std::fmt;
use std::ops::Index;

/// A marking assigns a token count to every place of a net.
///
/// Markings are small, hashable value types; the reachability explorer and
/// the simulator both use them as state identifiers.
///
/// ```
/// use mvml_petri::NetBuilder;
///
/// let mut b = NetBuilder::new("demo");
/// let p = b.place("p", 2);
/// let net = b.build().unwrap();
/// assert_eq!(net.initial_marking()[p], 2);
/// ```
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Marking(Box<[u32]>);

impl Marking {
    /// Creates a marking from explicit token counts.
    pub fn new(tokens: impl Into<Vec<u32>>) -> Self {
        Marking(tokens.into().into_boxed_slice())
    }

    /// Number of places covered by this marking.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Returns `true` if the marking covers no places.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Token count of `place`.
    ///
    /// # Panics
    ///
    /// Panics if `place` is out of range for this marking.
    pub fn tokens(&self, place: PlaceId) -> u32 {
        self.0[place.index()]
    }

    /// Total number of tokens across all places.
    pub fn total_tokens(&self) -> u64 {
        self.0.iter().map(|&t| u64::from(t)).sum()
    }

    /// Iterates over `(place index, token count)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (usize, u32)> + '_ {
        self.0.iter().copied().enumerate()
    }

    /// Raw token counts, indexed by place index.
    pub fn as_slice(&self) -> &[u32] {
        &self.0
    }

    pub(crate) fn set(&mut self, place: usize, tokens: u32) {
        self.0[place] = tokens;
    }

    pub(crate) fn get(&self, place: usize) -> u32 {
        self.0[place]
    }
}

impl Index<PlaceId> for Marking {
    type Output = u32;

    fn index(&self, place: PlaceId) -> &u32 {
        &self.0[place.index()]
    }
}

impl fmt::Debug for Marking {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Marking{:?}", &self.0)
    }
}

impl fmt::Display for Marking {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, t) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, ")")
    }
}

impl From<Vec<u32>> for Marking {
    fn from(tokens: Vec<u32>) -> Self {
        Marking::new(tokens)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let m = Marking::new(vec![1, 0, 3]);
        assert_eq!(m.len(), 3);
        assert!(!m.is_empty());
        assert_eq!(m.total_tokens(), 4);
        assert_eq!(m.as_slice(), &[1, 0, 3]);
        let pairs: Vec<_> = m.iter().collect();
        assert_eq!(pairs, vec![(0, 1), (1, 0), (2, 3)]);
    }

    #[test]
    fn display_and_debug() {
        let m = Marking::new(vec![2, 1]);
        assert_eq!(m.to_string(), "(2,1)");
        assert_eq!(format!("{m:?}"), "Marking[2, 1]");
    }

    #[test]
    fn equality_and_hash_are_structural() {
        use std::collections::HashSet;
        let a = Marking::new(vec![1, 2]);
        let b = Marking::new(vec![1, 2]);
        let c = Marking::new(vec![2, 1]);
        assert_eq!(a, b);
        assert_ne!(a, c);
        let mut set = HashSet::new();
        set.insert(a);
        assert!(set.contains(&b));
        assert!(!set.contains(&c));
    }

    #[test]
    fn empty_marking() {
        let m = Marking::new(Vec::new());
        assert!(m.is_empty());
        assert_eq!(m.total_tokens(), 0);
        assert_eq!(m.to_string(), "()");
    }
}
