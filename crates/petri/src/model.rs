//! Net structure: places, transitions, arcs, guards and the builder.

use crate::error::PetriError;
use crate::marking::Marking;
use std::fmt;
use std::sync::Arc;

/// Identifier of a place within a [`Net`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PlaceId(pub(crate) usize);

impl PlaceId {
    /// The underlying index of this place.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for PlaceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

/// Identifier of a transition within a [`Net`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TransitionId(pub(crate) usize);

impl TransitionId {
    /// The underlying index of this transition.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for TransitionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

/// Server semantics of a timed transition, following TimeNET terminology.
///
/// With `Single` semantics a transition fires at its base rate whenever it is
/// enabled; with `Infinite` semantics the rate is multiplied by the enabling
/// degree (the number of times the transition could fire concurrently given
/// the tokens in its input places), which models a population of independent
/// agents; `KServer(k)` caps that multiplier at `k`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[non_exhaustive]
pub enum ServerSemantics {
    /// Rate is independent of the enabling degree.
    #[default]
    Single,
    /// Rate scales linearly with the enabling degree.
    Infinite,
    /// Rate scales with the enabling degree, capped at `k` servers.
    KServer(u32),
}

/// A (possibly marking-dependent) firing rate for exponential transitions.
#[derive(Clone)]
pub enum RateSpec {
    /// A constant base rate.
    Const(f64),
    /// A rate computed from the current marking. Must return a finite,
    /// strictly positive value whenever the transition is enabled.
    Fn(Arc<dyn Fn(&Marking) -> f64 + Send + Sync>),
}

impl RateSpec {
    pub(crate) fn eval(&self, marking: &Marking) -> f64 {
        match self {
            RateSpec::Const(r) => *r,
            RateSpec::Fn(f) => f(marking),
        }
    }
}

impl fmt::Debug for RateSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RateSpec::Const(r) => write!(f, "RateSpec::Const({r})"),
            RateSpec::Fn(_) => write!(f, "RateSpec::Fn(..)"),
        }
    }
}

impl From<f64> for RateSpec {
    fn from(r: f64) -> Self {
        RateSpec::Const(r)
    }
}

/// A (possibly marking-dependent) weight for immediate transitions.
///
/// When several immediate transitions of the same (maximal) priority are
/// enabled in a marking, one is selected with probability proportional to its
/// weight — exactly the conflict-resolution rule used by the paper's `Trj1`/
/// `Trj2` victim selection (Table I).
#[derive(Clone)]
pub enum WeightSpec {
    /// A constant weight.
    Const(f64),
    /// A weight computed from the current marking. Must return a finite,
    /// non-negative value.
    Fn(Arc<dyn Fn(&Marking) -> f64 + Send + Sync>),
}

impl WeightSpec {
    pub(crate) fn eval(&self, marking: &Marking) -> f64 {
        match self {
            WeightSpec::Const(w) => *w,
            WeightSpec::Fn(f) => f(marking),
        }
    }
}

impl fmt::Debug for WeightSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WeightSpec::Const(w) => write!(f, "WeightSpec::Const({w})"),
            WeightSpec::Fn(_) => write!(f, "WeightSpec::Fn(..)"),
        }
    }
}

impl From<f64> for WeightSpec {
    fn from(w: f64) -> Self {
        WeightSpec::Const(w)
    }
}

/// Timing discipline of a transition.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub enum Timing {
    /// Fires in zero time; conflicts resolved by priority then weight.
    Immediate {
        /// Higher priorities pre-empt lower ones.
        priority: u32,
        /// Relative selection weight among equal-priority rivals.
        weight: WeightSpec,
    },
    /// Fires after an exponentially distributed delay.
    Exponential {
        /// Base firing rate (events per time unit).
        rate: RateSpec,
        /// How the rate scales with the enabling degree.
        semantics: ServerSemantics,
    },
    /// Fires after a fixed delay, measured from the instant the transition
    /// became enabled (enabling memory policy).
    Deterministic {
        /// The fixed firing delay.
        delay: f64,
    },
}

impl Timing {
    /// Whether this is an immediate transition.
    pub fn is_immediate(&self) -> bool {
        matches!(self, Timing::Immediate { .. })
    }

    /// Whether this is a deterministic (fixed-delay) transition.
    pub fn is_deterministic(&self) -> bool {
        matches!(self, Timing::Deterministic { .. })
    }
}

type GuardFn = Arc<dyn Fn(&Marking) -> bool + Send + Sync>;

/// A single transition of a net.
pub(crate) struct Transition {
    pub(crate) name: String,
    pub(crate) timing: Timing,
    /// `(place index, weight)` pairs consumed on firing.
    pub(crate) inputs: Vec<(usize, u32)>,
    /// `(place index, weight)` pairs produced on firing.
    pub(crate) outputs: Vec<(usize, u32)>,
    /// `(place index, weight)`: transition is disabled when tokens ≥ weight.
    pub(crate) inhibitors: Vec<(usize, u32)>,
    pub(crate) guard: Option<GuardFn>,
}

impl fmt::Debug for Transition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Transition")
            .field("name", &self.name)
            .field("timing", &self.timing)
            .field("inputs", &self.inputs)
            .field("outputs", &self.outputs)
            .field("inhibitors", &self.inhibitors)
            .field("guard", &self.guard.as_ref().map(|_| "<fn>"))
            .finish()
    }
}

/// An immutable, validated Petri net.
///
/// Built via [`NetBuilder`]. See the [crate documentation](crate) for an
/// end-to-end example.
#[derive(Debug)]
pub struct Net {
    pub(crate) name: String,
    pub(crate) place_names: Vec<String>,
    pub(crate) initial: Marking,
    pub(crate) transitions: Vec<Transition>,
}

impl Net {
    /// The net's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of places.
    pub fn place_count(&self) -> usize {
        self.place_names.len()
    }

    /// Number of transitions.
    pub fn transition_count(&self) -> usize {
        self.transitions.len()
    }

    /// The initial marking the net was built with.
    pub fn initial_marking(&self) -> Marking {
        self.initial.clone()
    }

    /// Name of place `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` does not belong to this net.
    pub fn place_name(&self, p: PlaceId) -> &str {
        &self.place_names[p.0]
    }

    /// Name of transition `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t` does not belong to this net.
    pub fn transition_name(&self, t: TransitionId) -> &str {
        &self.transitions[t.0].name
    }

    /// Looks up a place by name.
    pub fn place_by_name(&self, name: &str) -> Option<PlaceId> {
        self.place_names.iter().position(|n| n == name).map(PlaceId)
    }

    /// Looks up a transition by name.
    pub fn transition_by_name(&self, name: &str) -> Option<TransitionId> {
        self.transitions
            .iter()
            .position(|t| t.name == name)
            .map(TransitionId)
    }

    /// Iterates over all transition ids.
    pub fn transition_ids(&self) -> impl Iterator<Item = TransitionId> {
        (0..self.transitions.len()).map(TransitionId)
    }

    /// Timing discipline of transition `t`.
    pub fn timing(&self, t: TransitionId) -> &Timing {
        &self.transitions[t.0].timing
    }
}

/// Incremental builder for [`Net`].
///
/// ```
/// use mvml_petri::NetBuilder;
///
/// # fn main() -> Result<(), mvml_petri::PetriError> {
/// let mut b = NetBuilder::new("m/m/1/2");
/// let queue = b.place("queue", 0);
/// let free = b.place("free", 2);
/// let arrive = b.exponential("arrive", 1.0);
/// let serve = b.exponential("serve", 2.0);
/// b.input_arc(free, arrive, 1)?;
/// b.output_arc(arrive, queue, 1)?;
/// b.input_arc(queue, serve, 1)?;
/// b.output_arc(serve, free, 1)?;
/// let net = b.build()?;
/// assert_eq!(net.place_count(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct NetBuilder {
    name: String,
    place_names: Vec<String>,
    initial: Vec<u32>,
    transitions: Vec<Transition>,
}

impl NetBuilder {
    /// Starts a new, empty net.
    pub fn new(name: impl Into<String>) -> Self {
        NetBuilder {
            name: name.into(),
            place_names: Vec::new(),
            initial: Vec::new(),
            transitions: Vec::new(),
        }
    }

    /// Adds a place with an initial token count, returning its id.
    pub fn place(&mut self, name: impl Into<String>, initial_tokens: u32) -> PlaceId {
        self.place_names.push(name.into());
        self.initial.push(initial_tokens);
        PlaceId(self.place_names.len() - 1)
    }

    /// Adds an immediate transition with priority 1 and constant weight 1.
    pub fn immediate(&mut self, name: impl Into<String>) -> TransitionId {
        self.immediate_with(name, 1, WeightSpec::Const(1.0))
    }

    /// Adds an immediate transition with an explicit priority and weight.
    pub fn immediate_with(
        &mut self,
        name: impl Into<String>,
        priority: u32,
        weight: impl Into<WeightSpec>,
    ) -> TransitionId {
        self.push(
            name.into(),
            Timing::Immediate {
                priority,
                weight: weight.into(),
            },
        )
    }

    /// Adds an exponential transition with single-server semantics.
    pub fn exponential(
        &mut self,
        name: impl Into<String>,
        rate: impl Into<RateSpec>,
    ) -> TransitionId {
        self.exponential_with(name, rate, ServerSemantics::Single)
    }

    /// Adds an exponential transition with explicit server semantics.
    pub fn exponential_with(
        &mut self,
        name: impl Into<String>,
        rate: impl Into<RateSpec>,
        semantics: ServerSemantics,
    ) -> TransitionId {
        self.push(
            name.into(),
            Timing::Exponential {
                rate: rate.into(),
                semantics,
            },
        )
    }

    /// Adds a deterministic (fixed-delay) transition.
    pub fn deterministic(&mut self, name: impl Into<String>, delay: f64) -> TransitionId {
        self.push(name.into(), Timing::Deterministic { delay })
    }

    fn push(&mut self, name: String, timing: Timing) -> TransitionId {
        self.transitions.push(Transition {
            name,
            timing,
            inputs: Vec::new(),
            outputs: Vec::new(),
            inhibitors: Vec::new(),
            guard: None,
        });
        TransitionId(self.transitions.len() - 1)
    }

    /// Adds an input arc of the given weight from `place` to `transition`.
    ///
    /// # Errors
    ///
    /// Returns [`PetriError::UnknownId`] for out-of-range ids and
    /// [`PetriError::ZeroWeightArc`] for weight 0.
    pub fn input_arc(
        &mut self,
        place: PlaceId,
        transition: TransitionId,
        weight: u32,
    ) -> Result<(), PetriError> {
        self.check(place, transition, weight)?;
        self.transitions[transition.0]
            .inputs
            .push((place.0, weight));
        Ok(())
    }

    /// Adds an output arc of the given weight from `transition` to `place`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`NetBuilder::input_arc`].
    pub fn output_arc(
        &mut self,
        transition: TransitionId,
        place: PlaceId,
        weight: u32,
    ) -> Result<(), PetriError> {
        self.check(place, transition, weight)?;
        self.transitions[transition.0]
            .outputs
            .push((place.0, weight));
        Ok(())
    }

    /// Adds an inhibitor arc: `transition` is disabled whenever `place`
    /// holds at least `weight` tokens.
    ///
    /// # Errors
    ///
    /// Same conditions as [`NetBuilder::input_arc`].
    pub fn inhibitor_arc(
        &mut self,
        place: PlaceId,
        transition: TransitionId,
        weight: u32,
    ) -> Result<(), PetriError> {
        self.check(place, transition, weight)?;
        self.transitions[transition.0]
            .inhibitors
            .push((place.0, weight));
        Ok(())
    }

    /// Attaches a guard (TimeNET "enabling function") to a transition. The
    /// transition can only fire in markings for which the guard is `true`.
    ///
    /// # Errors
    ///
    /// Returns [`PetriError::UnknownId`] if `transition` is out of range.
    pub fn guard(
        &mut self,
        transition: TransitionId,
        guard: impl Fn(&Marking) -> bool + Send + Sync + 'static,
    ) -> Result<(), PetriError> {
        let t = self
            .transitions
            .get_mut(transition.0)
            .ok_or(PetriError::UnknownId {
                kind: "transition",
                index: transition.0,
            })?;
        t.guard = Some(Arc::new(guard));
        Ok(())
    }

    fn check(
        &self,
        place: PlaceId,
        transition: TransitionId,
        weight: u32,
    ) -> Result<(), PetriError> {
        if place.0 >= self.place_names.len() {
            return Err(PetriError::UnknownId {
                kind: "place",
                index: place.0,
            });
        }
        let t = self
            .transitions
            .get(transition.0)
            .ok_or(PetriError::UnknownId {
                kind: "transition",
                index: transition.0,
            })?;
        if weight == 0 {
            return Err(PetriError::ZeroWeightArc {
                transition: t.name.clone(),
            });
        }
        Ok(())
    }

    /// Validates and freezes the net.
    ///
    /// Runs the cheap always-on structural pass: malformed structure is a
    /// hard error here, while softer diagnostics (dead transitions, missing
    /// boundedness certificates, immediate cycles) are reported by the full
    /// [`Net::analyze`](crate::analysis) pass.
    ///
    /// # Errors
    ///
    /// * [`PetriError::DuplicateName`] if two places or two transitions
    ///   share a name.
    /// * [`PetriError::NoInputArc`] if a transition has no input arc.
    /// * [`PetriError::DuplicateArc`] if two arcs of the same kind connect
    ///   the same place and transition (firing would debit their sum while
    ///   enabling checks them individually — an underflow in the making).
    /// * [`PetriError::ContradictoryInhibitor`] if a transition requires at
    ///   least as many tokens on a place as the inhibitor threshold that
    ///   disables it there.
    /// * [`PetriError::InvalidParameter`] for non-positive / non-finite
    ///   constant rates or delays.
    pub fn build(self) -> Result<Net, PetriError> {
        for (i, name) in self.place_names.iter().enumerate() {
            if self.place_names[..i].contains(name) {
                return Err(PetriError::DuplicateName {
                    kind: "place",
                    name: name.clone(),
                });
            }
        }
        for (i, t) in self.transitions.iter().enumerate() {
            if self.transitions[..i].iter().any(|u| u.name == t.name) {
                return Err(PetriError::DuplicateName {
                    kind: "transition",
                    name: t.name.clone(),
                });
            }
        }
        for t in &self.transitions {
            if t.inputs.is_empty() {
                return Err(PetriError::NoInputArc {
                    transition: t.name.clone(),
                });
            }
            for arcs in [&t.inputs, &t.outputs, &t.inhibitors] {
                for (i, &(p, _)) in arcs.iter().enumerate() {
                    if arcs[..i].iter().any(|&(q, _)| q == p) {
                        return Err(PetriError::DuplicateArc {
                            transition: t.name.clone(),
                            place: self.place_names[p].clone(),
                        });
                    }
                }
            }
            for &(p, wi) in &t.inputs {
                if t.inhibitors.iter().any(|&(q, wh)| q == p && wh <= wi) {
                    return Err(PetriError::ContradictoryInhibitor {
                        transition: t.name.clone(),
                        place: self.place_names[p].clone(),
                    });
                }
            }
            match &t.timing {
                Timing::Exponential {
                    rate: RateSpec::Const(r),
                    ..
                } if !r.is_finite() || *r <= 0.0 => {
                    return Err(PetriError::InvalidParameter {
                        what: format!("rate {r} of transition `{}`", t.name),
                    });
                }
                Timing::Deterministic { delay } if !delay.is_finite() || *delay <= 0.0 => {
                    return Err(PetriError::InvalidParameter {
                        what: format!("delay {delay} of transition `{}`", t.name),
                    });
                }
                _ => {}
            }
        }
        Ok(self.build_unchecked())
    }

    /// Freezes the net without validation.
    ///
    /// Crate-internal escape hatch: unit tests use it to construct
    /// deliberately malformed nets for the analyser, and the Erlang
    /// expansion assembles stage nets that are correct by construction. All
    /// public construction goes through [`NetBuilder::build`].
    pub(crate) fn build_unchecked(self) -> Net {
        Net {
            name: self.name,
            place_names: self.place_names,
            initial: Marking::new(self.initial),
            transitions: self.transitions,
        }
    }
}

#[cfg(test)]
// Exact float assertions are deliberate here: the expected values are
// produced by the same deterministic arithmetic being tested.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    fn two_place_builder() -> (NetBuilder, PlaceId, PlaceId) {
        let mut b = NetBuilder::new("t");
        let p0 = b.place("a", 1);
        let p1 = b.place("b", 0);
        (b, p0, p1)
    }

    #[test]
    fn builder_assigns_sequential_ids() {
        let (mut b, p0, p1) = two_place_builder();
        assert_eq!(p0.index(), 0);
        assert_eq!(p1.index(), 1);
        let t0 = b.exponential("t0", 1.0);
        let t1 = b.immediate("t1");
        assert_eq!(t0.index(), 0);
        assert_eq!(t1.index(), 1);
    }

    #[test]
    fn lookup_by_name() {
        let (mut b, _, _) = two_place_builder();
        let t = b.exponential("fire", 1.0);
        b.input_arc(PlaceId(0), t, 1).unwrap();
        let net = b.build().unwrap();
        assert_eq!(net.place_by_name("b"), Some(PlaceId(1)));
        assert_eq!(net.place_by_name("zz"), None);
        assert_eq!(net.transition_by_name("fire"), Some(t));
        assert_eq!(net.transition_name(t), "fire");
        assert_eq!(net.place_name(PlaceId(0)), "a");
        assert_eq!(net.name(), "t");
    }

    #[test]
    fn build_rejects_transition_without_input() {
        let (mut b, _, _) = two_place_builder();
        b.exponential("orphan", 1.0);
        assert!(matches!(b.build(), Err(PetriError::NoInputArc { .. })));
    }

    #[test]
    fn build_rejects_bad_rate_and_delay() {
        let (mut b, p0, _) = two_place_builder();
        let t = b.exponential("neg", -1.0);
        b.input_arc(p0, t, 1).unwrap();
        assert!(matches!(
            b.build(),
            Err(PetriError::InvalidParameter { .. })
        ));

        let (mut b, p0, _) = two_place_builder();
        let t = b.deterministic("zero", 0.0);
        b.input_arc(p0, t, 1).unwrap();
        assert!(matches!(
            b.build(),
            Err(PetriError::InvalidParameter { .. })
        ));
    }

    #[test]
    fn arcs_reject_zero_weight_and_bad_ids() {
        let (mut b, p0, _) = two_place_builder();
        let t = b.exponential("t", 1.0);
        assert!(matches!(
            b.input_arc(p0, t, 0),
            Err(PetriError::ZeroWeightArc { .. })
        ));
        assert!(matches!(
            b.input_arc(PlaceId(99), t, 1),
            Err(PetriError::UnknownId { kind: "place", .. })
        ));
        assert!(matches!(
            b.output_arc(TransitionId(99), p0, 1),
            Err(PetriError::UnknownId {
                kind: "transition",
                ..
            })
        ));
        assert!(matches!(
            b.guard(TransitionId(99), |_| true),
            Err(PetriError::UnknownId { .. })
        ));
    }

    #[test]
    fn build_rejects_duplicate_place_name() {
        let mut b = NetBuilder::new("t");
        b.place("same", 1);
        b.place("same", 0);
        assert!(matches!(
            b.build(),
            Err(PetriError::DuplicateName { kind: "place", .. })
        ));
    }

    #[test]
    fn build_rejects_duplicate_transition_name() {
        let (mut b, p0, _) = two_place_builder();
        let t0 = b.exponential("same", 1.0);
        let t1 = b.exponential("same", 2.0);
        b.input_arc(p0, t0, 1).unwrap();
        b.input_arc(p0, t1, 1).unwrap();
        assert!(matches!(
            b.build(),
            Err(PetriError::DuplicateName {
                kind: "transition",
                ..
            })
        ));
    }

    #[test]
    fn build_rejects_duplicate_input_arc() {
        let (mut b, p0, _) = two_place_builder();
        let t = b.exponential("t", 1.0);
        b.input_arc(p0, t, 1).unwrap();
        b.input_arc(p0, t, 1).unwrap();
        assert!(matches!(b.build(), Err(PetriError::DuplicateArc { .. })));
    }

    #[test]
    fn build_rejects_contradictory_inhibitor() {
        let (mut b, p0, _) = two_place_builder();
        let t = b.exponential("t", 1.0);
        b.input_arc(p0, t, 2).unwrap();
        b.inhibitor_arc(p0, t, 2).unwrap();
        assert!(matches!(
            b.build(),
            Err(PetriError::ContradictoryInhibitor { .. })
        ));
    }

    #[test]
    fn build_accepts_inhibitor_above_input_weight() {
        let (mut b, p0, p1) = two_place_builder();
        let t = b.exponential("t", 1.0);
        b.input_arc(p0, t, 1).unwrap();
        b.output_arc(t, p1, 1).unwrap();
        // Disabled only at ≥ 3 tokens while needing 1: satisfiable.
        b.inhibitor_arc(p0, t, 3).unwrap();
        assert!(b.build().is_ok());
    }

    #[test]
    fn marking_dependent_rate_eval() {
        let r = RateSpec::Fn(Arc::new(|m: &Marking| f64::from(m.get(0)) * 0.5));
        let m = Marking::new(vec![4]);
        assert_eq!(r.eval(&m), 2.0);
        let c = RateSpec::from(3.0);
        assert_eq!(c.eval(&m), 3.0);
    }

    #[test]
    fn weight_spec_eval_and_debug() {
        let w = WeightSpec::Fn(Arc::new(|m: &Marking| f64::from(m.get(0))));
        assert_eq!(w.eval(&Marking::new(vec![7])), 7.0);
        assert!(format!("{w:?}").contains("Fn"));
        assert!(format!("{:?}", WeightSpec::Const(1.0)).contains("Const"));
        assert!(format!("{:?}", RateSpec::Const(1.0)).contains("Const"));
    }

    #[test]
    fn timing_predicates() {
        let imm = Timing::Immediate {
            priority: 1,
            weight: WeightSpec::Const(1.0),
        };
        let det = Timing::Deterministic { delay: 1.0 };
        let exp = Timing::Exponential {
            rate: RateSpec::Const(1.0),
            semantics: ServerSemantics::Single,
        };
        assert!(imm.is_immediate() && !imm.is_deterministic());
        assert!(det.is_deterministic() && !det.is_immediate());
        assert!(!exp.is_immediate() && !exp.is_deterministic());
    }

    #[test]
    fn ids_display() {
        assert_eq!(PlaceId(3).to_string(), "P3");
        assert_eq!(TransitionId(7).to_string(), "T7");
    }

    #[test]
    fn default_server_semantics_is_single() {
        assert_eq!(ServerSemantics::default(), ServerSemantics::Single);
    }
}
