//! Erlang-*k* phase expansion of deterministic transitions.
//!
//! A deterministic delay `D` is replaced by a chain of `k` exponential
//! stages, each with rate `k / D`. The total stage time is Erlang-*k*
//! distributed with mean `D` and coefficient of variation `1/√k`, so the
//! expanded net converges to the DSPN as `k → ∞`. The expansion turns a DSPN
//! into a plain SPN that [`crate::steady_state`] solves exactly.
//!
//! ## Semantics and limitations
//!
//! The original deterministic transition consumes its input tokens *when it
//! fires*; the expansion consumes them when the first stage fires and holds
//! the "in-progress" state in hidden stage places. The two coincide whenever
//! the deterministic transition's input places are private to it (no other
//! transition consumes from them) and the transition cannot be disabled while
//! counting down — which holds for rejuvenation clocks like the paper's
//! `Trc` (Fig. 3a). Guards and inhibitor arcs of the deterministic
//! transition gate the *first* stage only; [`erlang_expand`] rejects nets
//! where a deterministic transition shares an input place with another
//! transition, as the expansion would change behaviour.

use crate::error::PetriError;
use crate::model::{Net, RateSpec, ServerSemantics, Timing, Transition};

/// Default number of Erlang stages used by the higher-level model builders.
pub const DEFAULT_ERLANG_K: u32 = 32;

/// Expands every deterministic transition of `net` into an Erlang-`k` chain.
///
/// Returns a new net; `net` itself is not modified. Nets without
/// deterministic transitions are copied unchanged.
///
/// # Errors
///
/// * [`PetriError::InvalidParameter`] if `k == 0`.
/// * [`PetriError::UnsupportedDeterministicStructure`] if a deterministic
///   transition shares an input place with another transition (see module
///   docs).
pub fn erlang_expand(net: &Net, k: u32) -> Result<Net, PetriError> {
    if k == 0 {
        return Err(PetriError::InvalidParameter {
            what: "erlang stage count k = 0".to_string(),
        });
    }

    // Collect places consumed by non-deterministic transitions, to detect
    // sharing.
    let mut consumed_by_other: Vec<bool> = vec![false; net.place_count()];
    for tr in &net.transitions {
        if !tr.timing.is_deterministic() {
            for &(p, _) in &tr.inputs {
                consumed_by_other[p] = true;
            }
        }
    }
    // Count how many deterministic transitions consume each place.
    let mut det_consumers: Vec<u32> = vec![0; net.place_count()];
    for tr in &net.transitions {
        if tr.timing.is_deterministic() {
            for &(p, _) in &tr.inputs {
                det_consumers[p] += 1;
            }
        }
    }

    let mut place_names = net.place_names.clone();
    let mut initial: Vec<u32> = net.initial.as_slice().to_vec();
    let mut transitions: Vec<Transition> = Vec::with_capacity(net.transitions.len());

    for tr in &net.transitions {
        match &tr.timing {
            Timing::Deterministic { delay } => {
                for &(p, _) in &tr.inputs {
                    if consumed_by_other[p] || det_consumers[p] > 1 {
                        return Err(PetriError::UnsupportedDeterministicStructure {
                            transition: tr.name.clone(),
                        });
                    }
                }
                let stage_rate = f64::from(k) / *delay;
                // k stages: stage transition i moves from stage place i-1 to
                // stage place i; the first consumes the original inputs, the
                // last produces the original outputs.
                let mut prev_stage_place: Option<usize> = None;
                for stage in 0..k {
                    let is_first = stage == 0;
                    let is_last = stage == k - 1;
                    let inputs = if is_first {
                        tr.inputs.clone()
                    } else {
                        vec![(prev_stage_place.expect("stage place"), 1)]
                    };
                    let outputs = if is_last {
                        tr.outputs.clone()
                    } else {
                        let p = place_names.len();
                        place_names.push(format!("{}__stage{}", tr.name, stage + 1));
                        initial.push(0);
                        prev_stage_place = Some(p);
                        vec![(p, 1)]
                    };
                    transitions.push(Transition {
                        name: if k == 1 {
                            tr.name.clone()
                        } else {
                            format!("{}__e{}", tr.name, stage + 1)
                        },
                        timing: Timing::Exponential {
                            rate: RateSpec::Const(stage_rate),
                            semantics: ServerSemantics::Single,
                        },
                        inputs,
                        outputs,
                        inhibitors: if is_first {
                            tr.inhibitors.clone()
                        } else {
                            Vec::new()
                        },
                        guard: if is_first { tr.guard.clone() } else { None },
                    });
                }
            }
            _ => transitions.push(Transition {
                name: tr.name.clone(),
                timing: tr.timing.clone(),
                inputs: tr.inputs.clone(),
                outputs: tr.outputs.clone(),
                inhibitors: tr.inhibitors.clone(),
                guard: tr.guard.clone(),
            }),
        }
    }

    Ok(Net {
        name: format!("{}__erlang{}", net.name, k),
        place_names,
        initial: crate::marking::Marking::new(initial),
        transitions,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctmc::steady_state;
    use crate::model::NetBuilder;
    use crate::reward::ExpectedReward;

    /// An alternating renewal process: up for a deterministic period D, then
    /// down for an exponential repair with mean 1/μ. The long-run fraction
    /// of time up is D / (D + 1/μ).
    fn det_up_exp_down(d: f64, mu: f64) -> Net {
        let mut b = NetBuilder::new("renewal");
        let up = b.place("up", 1);
        let down = b.place("down", 0);
        let wear = b.deterministic("wear", d);
        let repair = b.exponential("repair", mu);
        b.input_arc(up, wear, 1).unwrap();
        b.output_arc(wear, down, 1).unwrap();
        b.input_arc(down, repair, 1).unwrap();
        b.output_arc(repair, up, 1).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn expansion_preserves_mean_cycle_structure() {
        let (d, mu) = (10.0, 0.5);
        let net = det_up_exp_down(d, mu);
        let expected_up = d / (d + 1.0 / mu);
        for k in [1u32, 4, 16, 64] {
            let expanded = erlang_expand(&net, k).unwrap();
            let ss = steady_state(&expanded).unwrap();
            let up = expanded.place_by_name("up").unwrap();
            // "up" here means any marking where the original `up` place or a
            // hidden stage place is occupied; the token sits in `up` only
            // during stage 1…k, so count stage places as up too. Simplest:
            // down place empty.
            let down = expanded.place_by_name("down").unwrap();
            let frac_up = ss.probability(|m| m[down] == 0);
            // Mean up time is exactly D for every k (Erlang-k mean = D), so
            // the up fraction is exact for all k in this renewal model.
            assert!(
                (frac_up - expected_up).abs() < 1e-9,
                "k={k}: {frac_up} vs {expected_up}"
            );
            assert!(ss.probability(|m| m[up] <= 1) > 0.999_999);
        }
    }

    #[test]
    fn k1_is_plain_exponential() {
        let net = det_up_exp_down(3.0, 1.0);
        let expanded = erlang_expand(&net, 1).unwrap();
        assert_eq!(expanded.transition_count(), 2);
        assert_eq!(expanded.place_count(), 2);
        assert!(expanded.transition_by_name("wear").is_some());
    }

    #[test]
    fn stage_places_and_names_created() {
        let net = det_up_exp_down(3.0, 1.0);
        let expanded = erlang_expand(&net, 4).unwrap();
        assert_eq!(expanded.place_count(), 2 + 3);
        assert_eq!(expanded.transition_count(), 4 + 1);
        assert!(expanded.place_by_name("wear__stage1").is_some());
        assert!(expanded.transition_by_name("wear__e4").is_some());
        assert!(expanded.name().contains("erlang4"));
    }

    #[test]
    fn zero_k_rejected() {
        let net = det_up_exp_down(3.0, 1.0);
        assert!(matches!(
            erlang_expand(&net, 0),
            Err(PetriError::InvalidParameter { .. })
        ));
    }

    #[test]
    fn shared_input_place_rejected() {
        let mut b = NetBuilder::new("shared");
        let p = b.place("p", 1);
        let q = b.place("q", 0);
        let det = b.deterministic("det", 1.0);
        let exp = b.exponential("exp", 1.0);
        b.input_arc(p, det, 1).unwrap();
        b.output_arc(det, q, 1).unwrap();
        b.input_arc(p, exp, 1).unwrap();
        b.output_arc(exp, q, 1).unwrap();
        let net = b.build().unwrap();
        assert!(matches!(
            erlang_expand(&net, 8),
            Err(PetriError::UnsupportedDeterministicStructure { .. })
        ));
    }

    #[test]
    fn nets_without_deterministic_transitions_pass_through() {
        let mut b = NetBuilder::new("plain");
        let p = b.place("p", 1);
        let q = b.place("q", 0);
        let t = b.exponential("t", 1.0);
        let r = b.exponential("r", 1.0);
        b.input_arc(p, t, 1).unwrap();
        b.output_arc(t, q, 1).unwrap();
        b.input_arc(q, r, 1).unwrap();
        b.output_arc(r, p, 1).unwrap();
        let net = b.build().unwrap();
        let expanded = erlang_expand(&net, 16).unwrap();
        assert_eq!(expanded.place_count(), net.place_count());
        assert_eq!(expanded.transition_count(), net.transition_count());
    }

    #[test]
    fn erlang_variance_shrinks_with_k() {
        // With two competing processes — a deterministic D=1 "win" vs an
        // exponential rate-1 "lose" — the probability that the deterministic
        // side fires first is P(Exp(1) > T) where T ~ Erlang-k(mean 1).
        // For true determinism it is e^{-1} ≈ 0.3679; for k=1 it is 0.5.
        // Build: token in `race`; det consumes race -> pd; exp consumes
        // race -> pe. But det and exp would share the input place, which the
        // expander rejects — so model the race with a *guarded* exponential
        // competitor on a mirror place instead.
        //
        // Simpler: verify monotone convergence of the renewal model's
        // short-cycle variance by checking the probability of being in the
        // *first half* of the stages grows closer to 1/2 · up-fraction.
        let net = det_up_exp_down(1.0, 1.0);
        let mut prev_err = f64::INFINITY;
        for k in [2u32, 8, 32] {
            let expanded = erlang_expand(&net, k).unwrap();
            let ss = steady_state(&expanded).unwrap();
            let down = expanded.place_by_name("down").unwrap();
            let frac_up = ss.probability(|m| m[down] == 0);
            let err = (frac_up - 0.5).abs();
            assert!(err <= prev_err + 1e-12);
            prev_err = err;
        }
    }
}
