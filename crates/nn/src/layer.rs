//! The [`Layer`] trait: forward/backward computation plus parameter access.

use crate::tensor::Tensor;

/// A mutable view of one parameter tensor and its gradient accumulator.
///
/// Exposed so optimisers ([`crate::optim`]) and fault injectors
/// (`mvml-faultinject`) can address parameters by `(layer, param, offset)`
/// without knowing layer internals — the analogue of PyTorchFI perturbing a
/// `state_dict` entry.
#[derive(Debug)]
pub struct Param<'a> {
    /// Parameter name within the layer (`"weight"` / `"bias"`).
    pub name: &'static str,
    /// Flattened parameter values.
    pub values: &'a mut [f32],
    /// Flattened gradient accumulator, same length as `values`.
    pub grads: &'a mut [f32],
}

/// A differentiable network layer.
///
/// Layers own their parameters and cache whatever activations they need
/// between `forward` and `backward`. The contract is strictly
/// forward-then-backward on the same input batch.
pub trait Layer: Send + Sync {
    /// Human-readable layer kind (e.g. `"dense"`, `"conv2d"`).
    fn name(&self) -> &'static str;

    /// Computes the layer output for `x`. `train` enables caching needed by
    /// a subsequent [`Layer::backward`].
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor;

    /// Back-propagates `grad_out` (gradient w.r.t. this layer's output),
    /// accumulating parameter gradients and returning the gradient w.r.t.
    /// the layer's input.
    ///
    /// # Panics
    ///
    /// Implementations may panic if called without a preceding
    /// `forward(…, train = true)`.
    fn backward(&mut self, grad_out: &Tensor) -> Tensor;

    /// Mutable access to all parameters (empty for stateless layers).
    fn params(&mut self) -> Vec<Param<'_>> {
        Vec::new()
    }

    /// Total number of scalar parameters.
    fn param_len(&self) -> usize {
        0
    }

    /// Output shape for a given input shape (including the batch dim).
    fn output_shape(&self, input: &[usize]) -> Vec<usize>;

    /// Multiply-accumulate operations needed for one forward pass over a
    /// batch of the given shape; the compute-cost proxy used by the
    /// overhead study (paper Table VIII).
    fn macs(&self, input: &[usize]) -> u64;

    /// Clones the layer into a boxed trait object.
    fn clone_box(&self) -> Box<dyn Layer>;

    /// Concrete-type access for tooling that needs layer internals (the
    /// post-training quantizer reads `Conv2d`/`Dense` weights through this).
    /// Layers that opt out of downcasting (the default) return `None`;
    /// stateless layers are identified by [`Layer::name`] instead.
    fn as_any(&self) -> Option<&dyn std::any::Any> {
        None
    }

    /// Zeroes all gradient accumulators.
    fn zero_grad(&mut self) {
        for p in self.params() {
            p.grads.fill(0.0);
        }
    }
}

impl Clone for Box<dyn Layer> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}
