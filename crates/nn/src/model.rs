//! Model containers: [`Sequential`] and weight snapshots.

use crate::layer::{Layer, Param};
use crate::tensor::Tensor;
use serde::{Deserialize, Serialize};

/// A serialisable snapshot of every parameter in a model.
///
/// Snapshots implement the paper's "reload the ML module from a safe memory
/// location" rejuvenation step: a pristine snapshot is taken after training
/// and restored whenever the module is rejuvenated.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelState {
    /// Per layer, per parameter: `(name, values)`.
    pub layers: Vec<Vec<(String, Vec<f32>)>>,
}

/// A feed-forward stack of layers.
///
/// `Sequential` itself implements [`Layer`], so stacks can nest (used by
/// [`crate::layers::Residual`]).
pub struct Sequential {
    name: String,
    layers: Vec<Box<dyn Layer>>,
}

impl Clone for Sequential {
    fn clone(&self) -> Self {
        Sequential {
            name: self.name.clone(),
            layers: self.layers.clone(),
        }
    }
}

impl std::fmt::Debug for Sequential {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Sequential(name={:?}, layers=[", self.name)?;
        for (i, l) in self.layers.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}", l.name())?;
        }
        write!(f, "])")
    }
}

impl Sequential {
    /// Creates an empty stack.
    pub fn new(name: impl Into<String>) -> Self {
        Sequential {
            name: name.into(),
            layers: Vec::new(),
        }
    }

    /// The model's name.
    pub fn model_name(&self) -> &str {
        &self.name
    }

    /// Appends a layer.
    pub fn push(&mut self, layer: impl Layer + 'static) -> &mut Self {
        self.layers.push(Box::new(layer));
        self
    }

    /// Number of layers.
    pub fn layer_count(&self) -> usize {
        self.layers.len()
    }

    /// Name of layer `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn layer_name(&self, i: usize) -> &'static str {
        self.layers[i].name()
    }

    /// Mutable parameter views of layer `i` (empty for stateless layers).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn layer_params(&mut self, i: usize) -> Vec<Param<'_>> {
        self.layers[i].params()
    }

    /// Shared view of layer `i`, for inspection (e.g. quantization reads
    /// weights through [`Layer::as_any`]).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn layer(&self, i: usize) -> &dyn Layer {
        self.layers[i].as_ref()
    }

    /// Mutable parameter views of every layer, flattened in layer order.
    pub fn all_params(&mut self) -> Vec<Param<'_>> {
        self.layers.iter_mut().flat_map(|l| l.params()).collect()
    }

    /// Indices of layers that own at least one parameter.
    pub fn parametric_layers(&self) -> Vec<usize> {
        self.layers
            .iter()
            .enumerate()
            .filter(|(_, l)| l.param_len() > 0)
            .map(|(i, _)| i)
            .collect()
    }

    /// Captures all parameters into a serialisable snapshot.
    pub fn snapshot(&mut self) -> ModelState {
        let layers = self
            .layers
            .iter_mut()
            .map(|l| {
                l.params()
                    .into_iter()
                    .map(|p| (p.name.to_string(), p.values.to_vec()))
                    .collect()
            })
            .collect();
        ModelState { layers }
    }

    /// Restores parameters from a snapshot taken on an identically-shaped
    /// model.
    ///
    /// # Panics
    ///
    /// Panics if the snapshot's structure does not match this model.
    pub fn restore(&mut self, state: &ModelState) {
        assert_eq!(
            state.layers.len(),
            self.layers.len(),
            "snapshot layer count mismatch"
        );
        for (layer, saved) in self.layers.iter_mut().zip(&state.layers) {
            let params = layer.params();
            assert_eq!(params.len(), saved.len(), "snapshot param count mismatch");
            for (p, (name, values)) in params.into_iter().zip(saved) {
                assert_eq!(p.name, name, "snapshot param name mismatch");
                assert_eq!(p.values.len(), values.len(), "snapshot param len mismatch");
                p.values.copy_from_slice(values);
            }
        }
    }

    /// Argmax over the last dimension of the model output: class predictions
    /// for a `[N, K]` logit tensor.
    ///
    /// The comparison uses the IEEE-754 total order (`f32::total_cmp`), so a
    /// model whose weights were corrupted into emitting NaN/±∞ still yields
    /// a deterministic (garbage) class instead of panicking mid-pipeline —
    /// detecting and discarding such outputs is the guard layer's job, not
    /// the argmax's.
    pub fn predict(&mut self, x: &Tensor) -> Vec<usize> {
        let y = self.forward(x, false);
        let k = *y.shape().last().expect("rank >= 1");
        y.as_slice()
            .chunks(k)
            .map(|row| {
                row.iter()
                    .enumerate()
                    .max_by(|a, b| a.1.total_cmp(b.1))
                    .map(|(i, _)| i)
                    .expect("non-empty row")
            })
            .collect()
    }
}

impl Layer for Sequential {
    fn name(&self) -> &'static str {
        "sequential"
    }

    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let mut cur = x.clone();
        for layer in &mut self.layers {
            cur = layer.forward(&cur, train);
        }
        cur
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let mut g = grad_out.clone();
        for layer in self.layers.iter_mut().rev() {
            g = layer.backward(&g);
        }
        g
    }

    fn params(&mut self) -> Vec<Param<'_>> {
        self.all_params()
    }

    fn param_len(&self) -> usize {
        self.layers.iter().map(|l| l.param_len()).sum()
    }

    fn output_shape(&self, input: &[usize]) -> Vec<usize> {
        let mut shape = input.to_vec();
        for layer in &self.layers {
            shape = layer.output_shape(&shape);
        }
        shape
    }

    fn macs(&self, input: &[usize]) -> u64 {
        let mut shape = input.to_vec();
        let mut total = 0u64;
        for layer in &self.layers {
            total += layer.macs(&shape);
            shape = layer.output_shape(&shape);
        }
        total
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Dense, Flatten, Relu};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_mlp(seed: u64) -> Sequential {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut m = Sequential::new("tiny");
        m.push(Dense::new(4, 8, &mut rng));
        m.push(Relu::new());
        m.push(Dense::new(8, 3, &mut rng));
        m
    }

    #[test]
    fn forward_shapes_compose() {
        let mut m = tiny_mlp(0);
        let x = Tensor::zeros(&[5, 4]);
        let y = m.forward(&x, false);
        assert_eq!(y.shape(), &[5, 3]);
        assert_eq!(m.output_shape(&[5, 4]), vec![5, 3]);
        assert_eq!(m.param_len(), 4 * 8 + 8 + 8 * 3 + 3);
        assert_eq!(m.macs(&[1, 4]), (4 * 8 + 8 + 8 * 3) as u64);
    }

    #[test]
    fn snapshot_restore_round_trip() {
        let mut m = tiny_mlp(1);
        let x = Tensor::from_vec(&[1, 4], vec![0.1, -0.2, 0.3, 0.4]);
        let before = m.forward(&x, false);
        let snap = m.snapshot();

        // perturb all weights
        for p in m.all_params() {
            for v in p.values.iter_mut() {
                *v += 1.0;
            }
        }
        let perturbed = m.forward(&x, false);
        assert_ne!(before.as_slice(), perturbed.as_slice());

        m.restore(&snap);
        let after = m.forward(&x, false);
        assert_eq!(before.as_slice(), after.as_slice());
    }

    #[test]
    fn snapshot_serde_round_trip() {
        let mut m = tiny_mlp(2);
        let snap = m.snapshot();
        let json = serde_json::to_string(&snap).unwrap();
        let back: ModelState = serde_json::from_str(&json).unwrap();
        assert_eq!(snap, back);
    }

    #[test]
    fn predictions_are_argmax() {
        let mut m = Sequential::new("id");
        m.push(Flatten::new());
        let x = Tensor::from_vec(&[2, 3, 1, 1], vec![0.1, 0.9, 0.0, 2.0, -1.0, 1.0]);
        assert_eq!(m.predict(&x), vec![1, 0]);
    }

    #[test]
    fn clone_is_independent() {
        let mut m = tiny_mlp(3);
        let mut c = m.clone();
        for p in c.all_params() {
            p.values.fill(0.0);
        }
        // original unchanged
        assert!(m
            .all_params()
            .iter()
            .any(|p| p.values.iter().any(|&v| v != 0.0)));
    }

    #[test]
    fn parametric_layer_indices() {
        let m = tiny_mlp(4);
        assert_eq!(m.parametric_layers(), vec![0, 2]);
        assert_eq!(m.layer_count(), 3);
        assert_eq!(m.layer_name(1), "relu");
        assert_eq!(m.model_name(), "tiny");
    }

    #[test]
    fn gradient_flows_through_stack() {
        let mut m = tiny_mlp(5);
        let x = Tensor::from_vec(&[1, 4], vec![0.5, -0.5, 0.25, 1.0]);
        let y = m.forward(&x, true);
        let g = m.backward(&Tensor::from_vec(y.shape(), vec![1.0; y.len()]));
        assert_eq!(g.shape(), x.shape());
        // at least one weight gradient is non-zero
        assert!(m
            .all_params()
            .iter()
            .any(|p| p.grads.iter().any(|&v| v != 0.0)));
    }

    #[test]
    #[should_panic(expected = "layer count mismatch")]
    fn restore_rejects_mismatched_snapshot() {
        let mut a = tiny_mlp(6);
        let snap = a.snapshot();
        let mut b = Sequential::new("other");
        let mut rng = StdRng::seed_from_u64(0);
        b.push(Dense::new(4, 3, &mut rng));
        b.restore(&snap);
    }
}
