//! Mini-batch training loops.

use crate::data::Dataset;
use crate::layer::Layer;
use crate::loss::softmax_cross_entropy;
use crate::model::Sequential;
use crate::optim::Sgd;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Hyper-parameters for [`train_classifier`].
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// Number of passes over the training set.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Learning rate.
    pub lr: f32,
    /// Momentum factor.
    pub momentum: f32,
    /// L2 weight decay.
    pub weight_decay: f32,
    /// Multiplicative learning-rate decay applied after every epoch
    /// (1.0 disables decay).
    pub lr_decay: f32,
    /// Shuffling seed.
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 10,
            batch_size: 128,
            lr: 0.05,
            momentum: 0.9,
            weight_decay: 1e-4,
            lr_decay: 1.0,
            seed: 38, // the paper fixes its framework seeds to 38
        }
    }
}

/// Per-epoch training record.
#[derive(Debug, Clone)]
pub struct TrainReport {
    /// Mean loss of each epoch.
    pub epoch_losses: Vec<f32>,
    /// Training accuracy after the final epoch.
    pub final_train_accuracy: f64,
}

/// Trains `model` as a softmax classifier on `data`.
///
/// # Panics
///
/// Panics if `data` is empty or `batch_size` is zero.
pub fn train_classifier(model: &mut Sequential, data: &Dataset, cfg: &TrainConfig) -> TrainReport {
    assert!(!data.is_empty(), "empty training set");
    assert!(cfg.batch_size > 0, "batch_size must be positive");
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut opt = Sgd::new(cfg.lr)
        .with_momentum(cfg.momentum)
        .with_weight_decay(cfg.weight_decay);
    let mut epoch_losses = Vec::with_capacity(cfg.epochs);
    for _ in 0..cfg.epochs {
        opt.lr *= cfg.lr_decay;
        let order = data.shuffled_indices(&mut rng);
        let mut total = 0.0f64;
        let mut batches = 0usize;
        for chunk in order.chunks(cfg.batch_size) {
            let (x, y) = data.batch(chunk);
            let logits = model.forward(&x, true);
            let (loss, grad) = softmax_cross_entropy(&logits, &y);
            model.backward(&grad);
            opt.step(model);
            total += f64::from(loss);
            batches += 1;
        }
        epoch_losses.push((total / batches as f64) as f32);
    }
    let final_train_accuracy = crate::metrics::evaluate_accuracy(model, data, cfg.batch_size);
    TrainReport {
        epoch_losses,
        final_train_accuracy,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Dense, Relu};
    use crate::signs::{generate, SignConfig};
    use crate::tensor::Tensor;

    /// A tiny, clearly separable 2-class problem: bright vs dark images.
    fn separable_dataset(n: usize) -> Dataset {
        let mut data = Vec::new();
        let mut labels = Vec::new();
        for i in 0..n {
            let bright = i % 2 == 0;
            let base = if bright { 0.8 } else { 0.2 };
            for j in 0..4 {
                data.push(base + 0.01 * ((i + j) % 3) as f32);
            }
            labels.push(usize::from(bright));
        }
        Dataset::new(Tensor::from_vec(&[n, 1, 2, 2], data), labels, 2)
    }

    fn mlp(inputs: usize, hidden: usize, classes: usize, seed: u64) -> Sequential {
        use crate::layers::Flatten;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut m = Sequential::new("mlp");
        m.push(Flatten::new());
        m.push(Dense::new(inputs, hidden, &mut rng));
        m.push(Relu::new());
        m.push(Dense::new(hidden, classes, &mut rng));
        m
    }

    #[test]
    fn learns_separable_problem() {
        let data = separable_dataset(64);
        let mut model = mlp(4, 8, 2, 0);
        let cfg = TrainConfig {
            epochs: 20,
            batch_size: 16,
            lr: 0.1,
            ..TrainConfig::default()
        };
        let report = train_classifier(&mut model, &data, &cfg);
        assert_eq!(report.epoch_losses.len(), 20);
        assert!(
            report.final_train_accuracy > 0.95,
            "acc={}",
            report.final_train_accuracy
        );
        assert!(report.epoch_losses.last().unwrap() < &0.3);
    }

    #[test]
    fn loss_decreases_over_training() {
        let data = separable_dataset(64);
        let mut model = mlp(4, 8, 2, 1);
        let report = train_classifier(
            &mut model,
            &data,
            &TrainConfig {
                epochs: 10,
                batch_size: 8,
                lr: 0.05,
                ..TrainConfig::default()
            },
        );
        assert!(report.epoch_losses.last().unwrap() < report.epoch_losses.first().unwrap());
    }

    #[test]
    fn training_is_deterministic_per_seed() {
        let data = separable_dataset(32);
        let cfg = TrainConfig {
            epochs: 3,
            batch_size: 8,
            ..TrainConfig::default()
        };
        let mut a = mlp(4, 8, 2, 7);
        let mut b = mlp(4, 8, 2, 7);
        let ra = train_classifier(&mut a, &data, &cfg);
        let rb = train_classifier(&mut b, &data, &cfg);
        assert_eq!(ra.epoch_losses, rb.epoch_losses);
    }

    #[test]
    fn learns_small_synthetic_signs() {
        // An easier sign configuration, small model, few epochs: sanity that
        // the full pipeline (generator → training → accuracy) learns signal.
        let cfg = SignConfig {
            classes: 5,
            image_size: 12,
            noise_std: 0.05,
            max_translate: 0.5,
            scale_jitter: 0.05,
            brightness_jitter: 0.05,
            occlusion_prob: 0.0,
        };
        let train = generate(&cfg, 250, 0);
        let test = generate(&cfg, 100, 1);
        let mut model = mlp(144, 32, 5, 3);
        let tc = TrainConfig {
            epochs: 15,
            batch_size: 32,
            lr: 0.1,
            ..TrainConfig::default()
        };
        let _ = train_classifier(&mut model, &train, &tc);
        let acc = crate::metrics::evaluate_accuracy(&mut model, &test, 32);
        assert!(acc > 0.8, "test accuracy {acc}");
    }
}
