//! Concrete layer implementations.

mod activation;
mod conv;
mod dense;
mod flatten;
mod pool;
mod residual;

pub use activation::{Relu, Sigmoid};
pub use conv::{Conv2d, KernelPath};
pub use dense::Dense;
pub use flatten::Flatten;
pub use pool::MaxPool2;
pub use residual::Residual;
