//! Elementwise activation layers.

use crate::layer::Layer;
use crate::tensor::Tensor;

/// Rectified linear unit: `y = max(0, x)`.
#[derive(Clone, Debug, Default)]
pub struct Relu {
    cached_mask: Vec<bool>,
    cached_shape: Vec<usize>,
}

impl Relu {
    /// Creates a ReLU layer.
    pub fn new() -> Self {
        Relu::default()
    }
}

impl Layer for Relu {
    fn name(&self) -> &'static str {
        "relu"
    }

    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let mut y = x.clone();
        if train {
            self.cached_mask = x.as_slice().iter().map(|&v| v > 0.0).collect();
            self.cached_shape = x.shape().to_vec();
        }
        for v in y.as_mut_slice() {
            if *v < 0.0 {
                *v = 0.0;
            }
        }
        y
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        assert!(
            !self.cached_mask.is_empty(),
            "backward before forward(train=true)"
        );
        let mut g = grad_out.clone();
        for (v, &keep) in g.as_mut_slice().iter_mut().zip(&self.cached_mask) {
            if !keep {
                *v = 0.0;
            }
        }
        g
    }

    fn output_shape(&self, input: &[usize]) -> Vec<usize> {
        input.to_vec()
    }

    fn macs(&self, input: &[usize]) -> u64 {
        input.iter().product::<usize>() as u64
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

/// Logistic sigmoid: `y = 1 / (1 + e^{-x})`.
#[derive(Clone, Debug, Default)]
pub struct Sigmoid {
    cached_output: Option<Tensor>,
}

impl Sigmoid {
    /// Creates a sigmoid layer.
    pub fn new() -> Self {
        Sigmoid::default()
    }
}

impl Layer for Sigmoid {
    fn name(&self) -> &'static str {
        "sigmoid"
    }

    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let mut y = x.clone();
        for v in y.as_mut_slice() {
            *v = 1.0 / (1.0 + (-*v).exp());
        }
        if train {
            self.cached_output = Some(y.clone());
        }
        y
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let y = self
            .cached_output
            .as_ref()
            .expect("backward before forward(train=true)");
        let mut g = grad_out.clone();
        for (gv, &yv) in g.as_mut_slice().iter_mut().zip(y.as_slice()) {
            *gv *= yv * (1.0 - yv);
        }
        g
    }

    fn output_shape(&self, input: &[usize]) -> Vec<usize> {
        input.to_vec()
    }

    fn macs(&self, input: &[usize]) -> u64 {
        4 * input.iter().product::<usize>() as u64
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_clips_negatives() {
        let mut r = Relu::new();
        let x = Tensor::from_vec(&[4], vec![-1., 0., 2., -0.5]);
        let y = r.forward(&x, true);
        assert_eq!(y.as_slice(), &[0., 0., 2., 0.]);
        let g = r.backward(&Tensor::from_vec(&[4], vec![1., 1., 1., 1.]));
        assert_eq!(g.as_slice(), &[0., 0., 1., 0.]);
    }

    #[test]
    fn sigmoid_values_and_gradient() {
        let mut s = Sigmoid::new();
        let x = Tensor::from_vec(&[3], vec![0.0, 10.0, -10.0]);
        let y = s.forward(&x, true);
        assert!((y.as_slice()[0] - 0.5).abs() < 1e-6);
        assert!(y.as_slice()[1] > 0.9999);
        assert!(y.as_slice()[2] < 0.0001);
        let g = s.backward(&Tensor::from_vec(&[3], vec![1., 1., 1.]));
        assert!((g.as_slice()[0] - 0.25).abs() < 1e-6);
        assert!(g.as_slice()[1] < 1e-3);
    }

    #[test]
    fn sigmoid_gradient_matches_numeric() {
        let mut s = Sigmoid::new();
        let x = Tensor::from_vec(&[1], vec![0.3]);
        let _ = s.forward(&x, true);
        let g = s.backward(&Tensor::from_vec(&[1], vec![1.0]));
        let eps = 1e-3f32;
        let f = |v: f32| 1.0 / (1.0 + (-v).exp());
        let numeric = (f(0.3 + eps) - f(0.3 - eps)) / (2.0 * eps);
        assert!((g.as_slice()[0] - numeric).abs() < 1e-4);
    }

    #[test]
    fn shapes_pass_through() {
        let r = Relu::new();
        assert_eq!(r.output_shape(&[2, 3, 4, 5]), vec![2, 3, 4, 5]);
        let s = Sigmoid::new();
        assert_eq!(s.output_shape(&[7]), vec![7]);
    }
}
