//! Flattening between convolutional and dense stages.

use crate::layer::Layer;
use crate::tensor::Tensor;

/// Flattens `[N, …]` to `[N, prod(…)]`, restoring the shape on backward.
#[derive(Clone, Debug, Default)]
pub struct Flatten {
    cached_shape: Vec<usize>,
}

impl Flatten {
    /// Creates a flatten layer.
    pub fn new() -> Self {
        Flatten::default()
    }
}

impl Layer for Flatten {
    fn name(&self) -> &'static str {
        "flatten"
    }

    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let n = x.shape()[0];
        let rest: usize = x.shape()[1..].iter().product();
        if train {
            self.cached_shape = x.shape().to_vec();
        }
        x.reshape(&[n, rest])
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        assert!(
            !self.cached_shape.is_empty(),
            "backward before forward(train=true)"
        );
        grad_out.reshape(&self.cached_shape)
    }

    fn output_shape(&self, input: &[usize]) -> Vec<usize> {
        vec![input[0], input[1..].iter().product()]
    }

    fn macs(&self, _input: &[usize]) -> u64 {
        0
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flatten_and_restore() {
        let mut f = Flatten::new();
        let x = Tensor::from_vec(&[2, 1, 2, 2], (0..8).map(|v| v as f32).collect());
        let y = f.forward(&x, true);
        assert_eq!(y.shape(), &[2, 4]);
        let g = f.backward(&y);
        assert_eq!(g.shape(), &[2, 1, 2, 2]);
        assert_eq!(g.as_slice(), x.as_slice());
    }

    #[test]
    fn output_shape_no_state() {
        let f = Flatten::new();
        assert_eq!(f.output_shape(&[3, 4, 5]), vec![3, 20]);
    }
}
