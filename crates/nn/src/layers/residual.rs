//! Residual (skip-connection) block.

use crate::layer::{Layer, Param};
use crate::model::Sequential;
use crate::tensor::Tensor;

/// A residual block: `y = x + f(x)` where `f` is an inner [`Sequential`]
/// whose output shape equals its input shape.
///
/// Used by the "ResMLP" model variant, which stands in for the paper's
/// ResNet50 as the third diverse architecture.
#[derive(Clone, Debug)]
pub struct Residual {
    inner: Sequential,
}

impl Residual {
    /// Wraps `inner` in a skip connection.
    pub fn new(inner: Sequential) -> Self {
        Residual { inner }
    }
}

impl Layer for Residual {
    fn name(&self) -> &'static str {
        "residual"
    }

    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let f = self.inner.forward(x, train);
        assert_eq!(
            f.shape(),
            x.shape(),
            "residual inner block must preserve shape"
        );
        f.add(x)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let through = self.inner.backward(grad_out);
        through.add(grad_out)
    }

    fn params(&mut self) -> Vec<Param<'_>> {
        self.inner.params()
    }

    fn param_len(&self) -> usize {
        self.inner.param_len()
    }

    fn output_shape(&self, input: &[usize]) -> Vec<usize> {
        input.to_vec()
    }

    fn macs(&self, input: &[usize]) -> u64 {
        self.inner.macs(input) + input.iter().product::<usize>() as u64
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::Dense;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn block(seed: u64) -> Residual {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut inner = Sequential::new("inner");
        inner.push(Dense::new(3, 3, &mut rng));
        Residual::new(inner)
    }

    #[test]
    fn zero_inner_weights_make_identity() {
        let mut r = block(0);
        for p in r.params() {
            p.values.fill(0.0);
        }
        let x = Tensor::from_vec(&[2, 3], vec![1., 2., 3., 4., 5., 6.]);
        let y = r.forward(&x, false);
        assert_eq!(y.as_slice(), x.as_slice());
    }

    #[test]
    fn gradient_includes_skip_path() {
        let mut r = block(1);
        for p in r.params() {
            p.values.fill(0.0);
        }
        let x = Tensor::from_vec(&[1, 3], vec![1., 1., 1.]);
        let _ = r.forward(&x, true);
        let g = r.backward(&Tensor::from_vec(&[1, 3], vec![1., 1., 1.]));
        // inner contributes zero (zero weights), skip contributes identity
        assert_eq!(g.as_slice(), &[1., 1., 1.]);
    }

    #[test]
    fn numeric_gradient_check() {
        let mut r = block(2);
        let x = Tensor::from_vec(&[1, 3], vec![0.2, -0.4, 0.8]);
        let _ = r.forward(&x, true);
        let gx = r.backward(&Tensor::from_vec(&[1, 3], vec![1., 1., 1.]));
        let eps = 1e-3f32;
        let mut x2 = x.clone();
        x2.as_mut_slice()[0] += eps;
        let lp: f32 = r.forward(&x2, false).as_slice().iter().sum();
        x2.as_mut_slice()[0] -= 2.0 * eps;
        let lm: f32 = r.forward(&x2, false).as_slice().iter().sum();
        let numeric = (lp - lm) / (2.0 * eps);
        assert!((numeric - gx.as_slice()[0]).abs() < 1e-2);
    }

    #[test]
    fn shape_and_macs_delegate() {
        let r = block(3);
        assert_eq!(r.output_shape(&[4, 3]), vec![4, 3]);
        assert_eq!(r.param_len(), 3 * 3 + 3);
        assert_eq!(r.macs(&[1, 3]), (3 * 3) as u64 + 3);
    }

    #[test]
    #[should_panic(expected = "preserve shape")]
    fn mismatched_inner_shape_panics() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut inner = Sequential::new("bad");
        inner.push(Dense::new(3, 2, &mut rng));
        let mut r = Residual::new(inner);
        let _ = r.forward(&Tensor::zeros(&[1, 3]), false);
    }
}
