//! 2×2 max pooling.

use crate::layer::Layer;
use crate::tensor::Tensor;

/// 2×2 max pooling with stride 2 over `[N, C, H, W]` inputs.
///
/// Odd trailing rows/columns are dropped (floor semantics), matching the
/// common deep-learning default.
#[derive(Clone, Debug, Default)]
pub struct MaxPool2 {
    cached_input_shape: Vec<usize>,
    cached_argmax: Vec<usize>,
}

impl MaxPool2 {
    /// Creates a 2×2 max-pool layer.
    pub fn new() -> Self {
        MaxPool2::default()
    }
}

impl Layer for MaxPool2 {
    fn name(&self) -> &'static str {
        "maxpool2"
    }

    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let [n, c, h, w]: [usize; 4] = x.shape().try_into().expect("maxpool expects [N,C,H,W]");
        let (oh, ow) = (h / 2, w / 2);
        assert!(oh > 0 && ow > 0, "maxpool input too small");
        let xs = x.as_slice();
        let mut out = Tensor::zeros(&[n, c, oh, ow]);
        let os = out.as_mut_slice();
        let mut argmax = vec![0usize; n * c * oh * ow];
        for img in 0..n {
            for ch in 0..c {
                let base = (img * c + ch) * h * w;
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut best_idx = base + (2 * oy) * w + 2 * ox;
                        let mut best = xs[best_idx];
                        for (dy, dx) in [(0usize, 1usize), (1, 0), (1, 1)] {
                            let idx = base + (2 * oy + dy) * w + 2 * ox + dx;
                            if xs[idx] > best {
                                best = xs[idx];
                                best_idx = idx;
                            }
                        }
                        let o = ((img * c + ch) * oh + oy) * ow + ox;
                        os[o] = best;
                        argmax[o] = best_idx;
                    }
                }
            }
        }
        if train {
            self.cached_input_shape = x.shape().to_vec();
            self.cached_argmax = argmax;
        }
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        assert!(
            !self.cached_input_shape.is_empty(),
            "backward before forward(train=true)"
        );
        let mut grad_in = Tensor::zeros(&self.cached_input_shape);
        let gi = grad_in.as_mut_slice();
        for (o, &src) in self.cached_argmax.iter().enumerate() {
            gi[src] += grad_out.as_slice()[o];
        }
        grad_in
    }

    fn output_shape(&self, input: &[usize]) -> Vec<usize> {
        vec![input[0], input[1], input[2] / 2, input[3] / 2]
    }

    fn macs(&self, input: &[usize]) -> u64 {
        // comparisons, not MACs; count as one op per input element read
        (input.iter().product::<usize>()) as u64
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_takes_max_per_window() {
        let mut pool = MaxPool2::new();
        let x = Tensor::from_vec(
            &[1, 1, 4, 4],
            vec![
                1., 2., 5., 6., //
                3., 4., 7., 8., //
                9., 10., 13., 14., //
                11., 12., 15., 16.,
            ],
        );
        let y = pool.forward(&x, false);
        assert_eq!(y.shape(), &[1, 1, 2, 2]);
        assert_eq!(y.as_slice(), &[4., 8., 12., 16.]);
    }

    #[test]
    fn backward_routes_gradient_to_argmax() {
        let mut pool = MaxPool2::new();
        let x = Tensor::from_vec(&[1, 1, 2, 2], vec![1., 9., 3., 2.]);
        let y = pool.forward(&x, true);
        assert_eq!(y.as_slice(), &[9.0]);
        let g = pool.backward(&Tensor::from_vec(&[1, 1, 1, 1], vec![2.5]));
        assert_eq!(g.as_slice(), &[0.0, 2.5, 0.0, 0.0]);
    }

    #[test]
    fn odd_sizes_floor() {
        let mut pool = MaxPool2::new();
        let x = Tensor::zeros(&[1, 1, 5, 5]);
        let y = pool.forward(&x, false);
        assert_eq!(y.shape(), &[1, 1, 2, 2]);
        assert_eq!(pool.output_shape(&[1, 1, 5, 5]), vec![1, 1, 2, 2]);
    }

    #[test]
    fn multi_channel_independence() {
        let mut pool = MaxPool2::new();
        let x = Tensor::from_vec(&[1, 2, 2, 2], vec![1., 2., 3., 4., 10., 20., 30., 40.]);
        let y = pool.forward(&x, false);
        assert_eq!(y.as_slice(), &[4., 40.]);
    }
}
