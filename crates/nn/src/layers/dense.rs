//! Fully-connected layer, computed with the cache-blocked [`crate::gemm`]
//! kernels. The backward pass uses the transposed-operand GEMM variants
//! directly on the stored layouts, so no transpose is ever materialised.

use crate::gemm;
use crate::init::he_normal;
use crate::layer::{Layer, Param};
use crate::tensor::Tensor;
use rand::rngs::StdRng;

/// A fully-connected (affine) layer: `y = x W + b`.
#[derive(Clone, Debug)]
pub struct Dense {
    in_features: usize,
    out_features: usize,
    weight: Tensor, // [in, out]
    bias: Tensor,   // [out]
    grad_w: Tensor,
    grad_b: Tensor,
    cached_input: Option<Tensor>,
}

impl Dense {
    /// Creates a dense layer with He-normal weights and zero bias.
    pub fn new(in_features: usize, out_features: usize, rng: &mut StdRng) -> Self {
        let weight = Tensor::from_vec(
            &[in_features, out_features],
            he_normal(rng, in_features, in_features * out_features),
        );
        Dense {
            in_features,
            out_features,
            weight,
            bias: Tensor::zeros(&[out_features]),
            grad_w: Tensor::zeros(&[in_features, out_features]),
            grad_b: Tensor::zeros(&[out_features]),
            cached_input: None,
        }
    }

    /// Input feature count.
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// Output feature count.
    pub fn out_features(&self) -> usize {
        self.out_features
    }

    /// Shared view of the `[in, out]` weight tensor.
    pub fn weight(&self) -> &Tensor {
        &self.weight
    }

    /// Shared view of the `[out]` bias tensor.
    pub fn bias(&self) -> &Tensor {
        &self.bias
    }
}

impl Layer for Dense {
    fn name(&self) -> &'static str {
        "dense"
    }

    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        assert_eq!(x.shape().len(), 2, "dense expects [N, features]");
        assert_eq!(x.shape()[1], self.in_features, "dense input width mismatch");
        if train {
            self.cached_input = Some(x.clone());
        }
        let n = x.shape()[0];
        let mut y = Tensor::zeros(&[n, self.out_features]);
        gemm::gemm(
            n,
            self.in_features,
            self.out_features,
            x.as_slice(),
            self.weight.as_slice(),
            y.as_mut_slice(),
        );
        let ys = y.as_mut_slice();
        let bs = self.bias.as_slice();
        for i in 0..n {
            for j in 0..self.out_features {
                ys[i * self.out_features + j] += bs[j];
            }
        }
        y
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let x = self
            .cached_input
            .as_ref()
            .expect("backward before forward(train=true)");
        let n = grad_out.shape()[0];
        // grad_w += x^T g: x is stored [N, in], i.e. already the transposed
        // left operand for the TN kernel.
        gemm::gemm_tn_acc(
            self.in_features,
            n,
            self.out_features,
            x.as_slice(),
            grad_out.as_slice(),
            self.grad_w.as_mut_slice(),
        );
        let gb = self.grad_b.as_mut_slice();
        let g = grad_out.as_slice();
        for i in 0..n {
            for j in 0..self.out_features {
                gb[j] += g[i * self.out_features + j];
            }
        }
        // grad_x = g W^T: W is stored [in, out], the transposed right
        // operand for the NT kernel.
        let mut gx = Tensor::zeros(&[n, self.in_features]);
        gemm::gemm_nt(
            n,
            self.out_features,
            self.in_features,
            g,
            self.weight.as_slice(),
            gx.as_mut_slice(),
        );
        gx
    }

    fn params(&mut self) -> Vec<Param<'_>> {
        vec![
            Param {
                name: "weight",
                values: self.weight.as_mut_slice(),
                grads: self.grad_w.as_mut_slice(),
            },
            Param {
                name: "bias",
                values: self.bias.as_mut_slice(),
                grads: self.grad_b.as_mut_slice(),
            },
        ]
    }

    fn param_len(&self) -> usize {
        self.in_features * self.out_features + self.out_features
    }

    fn output_shape(&self, input: &[usize]) -> Vec<usize> {
        vec![input[0], self.out_features]
    }

    fn macs(&self, input: &[usize]) -> u64 {
        (input[0] * self.in_features * self.out_features) as u64
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn forward_applies_affine_map() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut d = Dense::new(2, 3, &mut rng);
        // overwrite params with known values
        {
            let mut ps = d.params();
            ps[0].values.copy_from_slice(&[1., 2., 3., 4., 5., 6.]); // W [2,3]
            ps[1].values.copy_from_slice(&[0.5, -0.5, 0.0]);
        }
        let x = Tensor::from_vec(&[1, 2], vec![1., 1.]);
        let y = d.forward(&x, false);
        assert_eq!(y.shape(), &[1, 3]);
        assert_eq!(y.as_slice(), &[5.5, 6.5, 9.0]);
    }

    #[test]
    fn backward_gradients_match_numeric() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut d = Dense::new(3, 2, &mut rng);
        let x = Tensor::from_vec(&[2, 3], vec![0.3, -0.2, 0.5, 1.0, 0.1, -0.7]);

        // analytic gradients for loss = sum(y)
        let _ = d.forward(&x, true);
        let gout = Tensor::from_vec(&[2, 2], vec![1.0; 4]);
        let gx = d.backward(&gout);

        let eps = 1e-3f32;
        // check dL/dw for a few entries
        for &idx in &[0usize, 2, 5] {
            let loss =
                |d: &mut Dense, x: &Tensor| -> f32 { d.forward(x, false).as_slice().iter().sum() };
            let base_val = d.params()[0].values[idx];
            d.params()[0].values[idx] = base_val + eps;
            let lp = loss(&mut d, &x);
            d.params()[0].values[idx] = base_val - eps;
            let lm = loss(&mut d, &x);
            d.params()[0].values[idx] = base_val;
            let numeric = (lp - lm) / (2.0 * eps);
            let analytic = d.params()[0].grads[idx];
            assert!(
                (numeric - analytic).abs() < 1e-2,
                "idx={idx}: {numeric} vs {analytic}"
            );
        }
        // check dL/dx numerically for one entry
        let mut x2 = x.clone();
        x2.as_mut_slice()[1] += eps;
        let lp: f32 = d.forward(&x2, false).as_slice().iter().sum();
        x2.as_mut_slice()[1] -= 2.0 * eps;
        let lm: f32 = d.forward(&x2, false).as_slice().iter().sum();
        let numeric = (lp - lm) / (2.0 * eps);
        assert!((numeric - gx.as_slice()[1]).abs() < 1e-2);
    }

    #[test]
    fn param_len_and_macs() {
        let mut rng = StdRng::seed_from_u64(2);
        let d = Dense::new(4, 5, &mut rng);
        assert_eq!(d.param_len(), 4 * 5 + 5);
        assert_eq!(d.macs(&[8, 4]), 8 * 4 * 5);
        assert_eq!(d.output_shape(&[8, 4]), vec![8, 5]);
    }

    #[test]
    fn zero_grad_clears_accumulators() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut d = Dense::new(2, 2, &mut rng);
        let x = Tensor::from_vec(&[1, 2], vec![1., 2.]);
        let _ = d.forward(&x, true);
        let _ = d.backward(&Tensor::from_vec(&[1, 2], vec![1., 1.]));
        assert!(d.params()[0].grads.iter().any(|&g| g != 0.0));
        d.zero_grad();
        assert!(d.params()[0].grads.iter().all(|&g| g == 0.0));
    }

    #[test]
    #[should_panic(expected = "input width mismatch")]
    fn forward_rejects_wrong_width() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut d = Dense::new(3, 2, &mut rng);
        let _ = d.forward(&Tensor::zeros(&[1, 4]), false);
    }
}
