//! 2-D convolution (stride 1, symmetric zero padding).

use crate::init::he_normal;
use crate::layer::{Layer, Param};
use crate::tensor::Tensor;
use rand::rngs::StdRng;

/// A 2-D convolution over `[N, C, H, W]` inputs with stride 1 and symmetric
/// zero padding.
#[derive(Clone, Debug)]
pub struct Conv2d {
    in_channels: usize,
    out_channels: usize,
    kernel: usize,
    padding: usize,
    weight: Tensor, // [OC, IC, K, K]
    bias: Tensor,   // [OC]
    grad_w: Tensor,
    grad_b: Tensor,
    cached_input: Option<Tensor>,
}

impl Conv2d {
    /// Creates a convolution layer with He-normal weights and zero bias.
    pub fn new(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        padding: usize,
        rng: &mut StdRng,
    ) -> Self {
        let fan_in = in_channels * kernel * kernel;
        let n = out_channels * fan_in;
        Conv2d {
            in_channels,
            out_channels,
            kernel,
            padding,
            weight: Tensor::from_vec(&[out_channels, in_channels, kernel, kernel], he_normal(rng, fan_in, n)),
            bias: Tensor::zeros(&[out_channels]),
            grad_w: Tensor::zeros(&[out_channels, in_channels, kernel, kernel]),
            grad_b: Tensor::zeros(&[out_channels]),
            cached_input: None,
        }
    }

    fn out_hw(&self, h: usize, w: usize) -> (usize, usize) {
        (h + 2 * self.padding - self.kernel + 1, w + 2 * self.padding - self.kernel + 1)
    }

    /// Copies `x` (`[N, C, H, W]`) into a zero-padded buffer
    /// `[N, C, H+2p, W+2p]`, so the convolution loops need no bounds checks
    /// and vectorise.
    fn pad_input(&self, x: &Tensor, n: usize, c: usize, h: usize, w: usize) -> Vec<f32> {
        let p = self.padding;
        let (ph, pw) = (h + 2 * p, w + 2 * p);
        let mut out = vec![0.0f32; n * c * ph * pw];
        let xs = x.as_slice();
        for plane in 0..n * c {
            for y in 0..h {
                let src = plane * h * w + y * w;
                let dst = plane * ph * pw + (y + p) * pw + p;
                out[dst..dst + w].copy_from_slice(&xs[src..src + w]);
            }
        }
        out
    }
}

impl Layer for Conv2d {
    fn name(&self) -> &'static str {
        "conv2d"
    }

    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let [n, c, h, w]: [usize; 4] = x.shape().try_into().expect("conv2d expects [N,C,H,W]");
        assert_eq!(c, self.in_channels, "conv2d channel mismatch");
        let (oh, ow) = self.out_hw(h, w);
        assert!(oh > 0 && ow > 0, "conv2d output collapsed to zero size");
        if train {
            self.cached_input = Some(x.clone());
        }
        let k = self.kernel;
        let pw = w + 2 * self.padding;
        let xpad = self.pad_input(x, n, c, h, w);
        let ws = self.weight.as_slice();
        let bs = self.bias.as_slice();
        let ph = h + 2 * self.padding;
        let mut out = Tensor::zeros(&[n, self.out_channels, oh, ow]);
        let os = out.as_mut_slice();
        for img in 0..n {
            for (oc, &bias) in bs.iter().enumerate() {
                let o_base = ((img * self.out_channels) + oc) * oh * ow;
                os[o_base..o_base + oh * ow].fill(bias);
                for ic in 0..c {
                    let x_base = ((img * c) + ic) * ph * pw;
                    let w_base = ((oc * c) + ic) * k * k;
                    for ky in 0..k {
                        for kx in 0..k {
                            let weight = ws[w_base + ky * k + kx];
                            if weight == 0.0 {
                                continue;
                            }
                            for oy in 0..oh {
                                let xrow = x_base + (oy + ky) * pw + kx;
                                let orow = o_base + oy * ow;
                                let (xr, or) =
                                    (&xpad[xrow..xrow + ow], &mut os[orow..orow + ow]);
                                for (o, &v) in or.iter_mut().zip(xr) {
                                    *o += weight * v;
                                }
                            }
                        }
                    }
                }
            }
        }
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let x = self.cached_input.clone().expect("backward before forward(train=true)");
        let [n, c, h, w]: [usize; 4] = x.shape().try_into().expect("cached input shape");
        let [gn, goc, oh, ow]: [usize; 4] = grad_out.shape().try_into().expect("grad shape");
        assert_eq!(gn, n);
        assert_eq!(goc, self.out_channels);
        let k = self.kernel;
        let p = self.padding;
        let (ph, pw) = (h + 2 * p, w + 2 * p);
        let xpad = self.pad_input(&x, n, c, h, w);
        let mut gipad = vec![0.0f32; n * c * ph * pw];
        let gs = grad_out.as_slice();
        let ws = self.weight.as_slice();
        let gw = self.grad_w.as_mut_slice();
        let gb = self.grad_b.as_mut_slice();
        for img in 0..n {
            for (oc, gb_v) in gb.iter_mut().enumerate() {
                let g_base = ((img * self.out_channels) + oc) * oh * ow;
                *gb_v += gs[g_base..g_base + oh * ow].iter().sum::<f32>();
                for ic in 0..c {
                    let x_base = ((img * c) + ic) * ph * pw;
                    let w_base = ((oc * c) + ic) * k * k;
                    for ky in 0..k {
                        for kx in 0..k {
                            let widx = w_base + ky * k + kx;
                            let weight = ws[widx];
                            let mut wacc = 0.0f32;
                            for oy in 0..oh {
                                let xrow = x_base + (oy + ky) * pw + kx;
                                let grow = g_base + oy * ow;
                                let xr = &xpad[xrow..xrow + ow];
                                let gr = &gs[grow..grow + ow];
                                let gir = &mut gipad[xrow..xrow + ow];
                                for ((gi_v, &g), &xv) in gir.iter_mut().zip(gr).zip(xr) {
                                    wacc += g * xv;
                                    *gi_v += g * weight;
                                }
                            }
                            gw[widx] += wacc;
                        }
                    }
                }
            }
        }
        // Un-pad the input gradient.
        let mut grad_in = Tensor::zeros(&[n, c, h, w]);
        let gi = grad_in.as_mut_slice();
        for plane in 0..n * c {
            for y in 0..h {
                let src = plane * ph * pw + (y + p) * pw + p;
                let dst = plane * h * w + y * w;
                gi[dst..dst + w].copy_from_slice(&gipad[src..src + w]);
            }
        }
        grad_in
    }

    fn params(&mut self) -> Vec<Param<'_>> {
        vec![
            Param { name: "weight", values: self.weight.as_mut_slice(), grads: self.grad_w.as_mut_slice() },
            Param { name: "bias", values: self.bias.as_mut_slice(), grads: self.grad_b.as_mut_slice() },
        ]
    }

    fn param_len(&self) -> usize {
        self.out_channels * self.in_channels * self.kernel * self.kernel + self.out_channels
    }

    fn output_shape(&self, input: &[usize]) -> Vec<usize> {
        let (oh, ow) = self.out_hw(input[2], input[3]);
        vec![input[0], self.out_channels, oh, ow]
    }

    fn macs(&self, input: &[usize]) -> u64 {
        let (oh, ow) = self.out_hw(input[2], input[3]);
        (input[0] * self.out_channels * oh * ow * self.in_channels * self.kernel * self.kernel) as u64
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn ident_kernel_conv() -> Conv2d {
        let mut rng = StdRng::seed_from_u64(0);
        let mut conv = Conv2d::new(1, 1, 3, 1, &mut rng);
        {
            let mut ps = conv.params();
            ps[0].values.fill(0.0);
            ps[0].values[4] = 1.0; // centre tap -> identity
            ps[1].values.fill(0.0);
        }
        conv
    }

    #[test]
    fn identity_kernel_preserves_input() {
        let mut conv = ident_kernel_conv();
        let x = Tensor::from_vec(&[1, 1, 3, 3], (1..=9).map(|v| v as f32).collect());
        let y = conv.forward(&x, false);
        assert_eq!(y.shape(), &[1, 1, 3, 3]);
        assert_eq!(y.as_slice(), x.as_slice());
    }

    #[test]
    fn valid_convolution_known_value() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut conv = Conv2d::new(1, 1, 2, 0, &mut rng);
        {
            let mut ps = conv.params();
            ps[0].values.copy_from_slice(&[1., 2., 3., 4.]);
            ps[1].values[0] = 0.5;
        }
        let x = Tensor::from_vec(&[1, 1, 2, 2], vec![1., 1., 1., 1.]);
        let y = conv.forward(&x, false);
        assert_eq!(y.shape(), &[1, 1, 1, 1]);
        assert_eq!(y.as_slice(), &[10.5]);
    }

    #[test]
    fn gradients_match_numeric() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut conv = Conv2d::new(2, 3, 3, 1, &mut rng);
        let x = Tensor::from_vec(
            &[1, 2, 4, 4],
            (0..32).map(|i| ((i * 7) % 11) as f32 / 11.0 - 0.5).collect(),
        );
        let y = conv.forward(&x, true);
        let gout = Tensor::from_vec(y.shape(), vec![1.0; y.len()]);
        let gx = conv.backward(&gout);

        let eps = 1e-2f32;
        let loss = |c: &mut Conv2d, x: &Tensor| -> f32 { c.forward(x, false).as_slice().iter().sum() };
        for &idx in &[0usize, 7, 20, 53] {
            let base = conv.params()[0].values[idx];
            conv.params()[0].values[idx] = base + eps;
            let lp = loss(&mut conv, &x);
            conv.params()[0].values[idx] = base - eps;
            let lm = loss(&mut conv, &x);
            conv.params()[0].values[idx] = base;
            let numeric = (lp - lm) / (2.0 * eps);
            let analytic = conv.params()[0].grads[idx];
            assert!(
                (numeric - analytic).abs() < 0.05 * analytic.abs().max(1.0),
                "w[{idx}]: numeric {numeric} vs analytic {analytic}"
            );
        }
        // input gradient
        let mut x2 = x.clone();
        for &idx in &[3usize, 17] {
            let base = x2.as_slice()[idx];
            x2.as_mut_slice()[idx] = base + eps;
            let lp = loss(&mut conv, &x2);
            x2.as_mut_slice()[idx] = base - eps;
            let lm = loss(&mut conv, &x2);
            x2.as_mut_slice()[idx] = base;
            let numeric = (lp - lm) / (2.0 * eps);
            assert!((numeric - gx.as_slice()[idx]).abs() < 0.05 * numeric.abs().max(1.0));
        }
        // bias gradient: dL/db = number of output pixels per channel
        let per_channel = 4.0 * 4.0;
        for oc in 0..3 {
            assert!((conv.params()[1].grads[oc] - per_channel).abs() < 1e-4);
        }
    }

    #[test]
    fn shapes_and_macs() {
        let mut rng = StdRng::seed_from_u64(3);
        let conv = Conv2d::new(3, 8, 5, 0, &mut rng);
        assert_eq!(conv.output_shape(&[2, 3, 16, 16]), vec![2, 8, 12, 12]);
        assert_eq!(conv.param_len(), 8 * 3 * 25 + 8);
        assert_eq!(conv.macs(&[1, 3, 16, 16]), (8 * 12 * 12 * 3 * 25) as u64);
    }

    #[test]
    #[should_panic(expected = "channel mismatch")]
    fn rejects_channel_mismatch() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut conv = Conv2d::new(2, 1, 3, 1, &mut rng);
        let _ = conv.forward(&Tensor::zeros(&[1, 3, 4, 4]), false);
    }
}
