//! 2-D convolution (stride 1, symmetric zero padding).
//!
//! Two kernel implementations share one layer:
//!
//! - **GEMM path** (default for channel-rich, work-heavy shapes): lowers the
//!   whole batch to one im2col patch matrix `[C·K·K, N·OH·OW]` and computes
//!   all output channels with a single cache-blocked [`crate::gemm`] call.
//!   The backward pass reuses the cached patch matrix — `dW` is a
//!   `dy · colᵀ` product and the input gradient is a `Wᵀ · dy` product
//!   scattered back (col2im).
//! - **Direct path**: the original nested loops, kept as the small-shape
//!   fallback and as a parity oracle (force it with the `reference` cargo
//!   feature or [`Conv2d::set_kernel_path`]).
//!
//! Both paths produce gradients verified against numerical differentiation;
//! forward outputs agree to float tolerance (the two paths sum products in
//! different orders, so results are not bitwise identical between paths —
//! but each path individually is deterministic for any thread count).

use crate::gemm;
use crate::init::he_normal;
use crate::layer::{Layer, Param};
use crate::tensor::Tensor;
use rand::rngs::StdRng;

/// Which convolution kernel [`Conv2d`] executes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum KernelPath {
    /// Pick per shape: GEMM when the lowered matrix is chunky in every
    /// dimension (see [`Conv2d::GEMM_MIN_OUT_CHANNELS`] /
    /// [`Conv2d::GEMM_MIN_CKK`] / [`Conv2d::GEMM_MIN_FLOPS`]), direct loops
    /// otherwise (the `reference` cargo feature forces the direct path
    /// everywhere).
    #[default]
    Auto,
    /// Always lower to im2col + GEMM.
    Gemm,
    /// Always run the direct loops.
    Direct,
}

/// What `forward(train=true)` stashes for the backward pass. Caching the
/// already-lowered buffer (instead of cloning the raw input) means backward
/// never re-pads or re-lowers, and the layer holds no redundant copy of `x`.
#[derive(Clone, Debug)]
enum ConvCache {
    /// GEMM path: per-image im2col patch matrices, `n * (C·K·K) * (OH·OW)`
    /// values, plus the original spatial dims needed to shape the gradient.
    Im2col {
        col: Vec<f32>,
        n: usize,
        h: usize,
        w: usize,
    },
    /// Direct path: the zero-padded input `[N, C, H+2p, W+2p]`.
    Padded {
        xpad: Vec<f32>,
        n: usize,
        h: usize,
        w: usize,
    },
}

/// A 2-D convolution over `[N, C, H, W]` inputs with stride 1 and symmetric
/// zero padding.
#[derive(Clone, Debug)]
pub struct Conv2d {
    in_channels: usize,
    out_channels: usize,
    kernel: usize,
    padding: usize,
    weight: Tensor, // [OC, IC, K, K]
    bias: Tensor,   // [OC]
    grad_w: Tensor,
    grad_b: Tensor,
    path: KernelPath,
    cache: Option<ConvCache>,
}

impl Conv2d {
    /// `KernelPath::Auto` lowers to GEMM only when all three hold (values
    /// measured with `examples/conv_probe.rs`): enough output rows that the
    /// 4-wide microkernel tiles run full and amortise the im2col build
    /// (out_channels ≥ 12 — 6→6 and 8→8 heads lose at every batch size,
    /// 16→16 wins even at batch 1), enough reduction depth to amortise
    /// panel packing (`C·K·K` ≥ 32 — single-input-channel stems stay
    /// direct), and enough total work to amortise the per-call buffer
    /// allocations (`OC·CKK·N·OHOW` MACs ≥ `GEMM_MIN_FLOPS`).
    pub const GEMM_MIN_OUT_CHANNELS: usize = 12;
    /// See [`Conv2d::GEMM_MIN_OUT_CHANNELS`].
    pub const GEMM_MIN_CKK: usize = 32;
    /// See [`Conv2d::GEMM_MIN_OUT_CHANNELS`].
    pub const GEMM_MIN_FLOPS: usize = 1 << 18;

    /// Creates a convolution layer with He-normal weights and zero bias.
    pub fn new(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        padding: usize,
        rng: &mut StdRng,
    ) -> Self {
        let fan_in = in_channels * kernel * kernel;
        let n = out_channels * fan_in;
        Conv2d {
            in_channels,
            out_channels,
            kernel,
            padding,
            weight: Tensor::from_vec(
                &[out_channels, in_channels, kernel, kernel],
                he_normal(rng, fan_in, n),
            ),
            bias: Tensor::zeros(&[out_channels]),
            grad_w: Tensor::zeros(&[out_channels, in_channels, kernel, kernel]),
            grad_b: Tensor::zeros(&[out_channels]),
            path: KernelPath::default(),
            cache: None,
        }
    }

    /// Forces the kernel choice (parity tests and benchmarks compare paths
    /// on identical shapes; everything else should leave this at `Auto`).
    pub fn set_kernel_path(&mut self, path: KernelPath) {
        self.path = path;
    }

    /// Input channel count.
    pub fn in_channels(&self) -> usize {
        self.in_channels
    }

    /// Output channel count.
    pub fn out_channels(&self) -> usize {
        self.out_channels
    }

    /// Square kernel side length.
    pub fn kernel_size(&self) -> usize {
        self.kernel
    }

    /// Symmetric zero padding.
    pub fn padding(&self) -> usize {
        self.padding
    }

    /// Shared view of the `[OC, IC, K, K]` weight tensor.
    pub fn weight(&self) -> &Tensor {
        &self.weight
    }

    /// Shared view of the `[OC]` bias tensor.
    pub fn bias(&self) -> &Tensor {
        &self.bias
    }

    /// What [`KernelPath::Auto`] resolves to for an `[N, C, H, W]` input
    /// under the currently installed [`gemm::tune::params`] — `true` means
    /// the im2col+GEMM path. Benchmarks report the routed path from this
    /// predicate instead of inferring it from timings.
    pub fn auto_picks_gemm(&self, input: &[usize]) -> bool {
        let (oh, ow) = self.out_hw(input[2], input[3]);
        let ckk = self.in_channels * self.kernel * self.kernel;
        self.auto_thresholds_pass(ckk, input[0] * oh * ow)
    }

    fn auto_thresholds_pass(&self, ckk: usize, cols: usize) -> bool {
        let tp = gemm::tune::params();
        !cfg!(feature = "reference")
            && self.out_channels >= tp.gemm_min_out_channels
            && ckk >= tp.gemm_min_ckk
            && self.out_channels * ckk * cols >= tp.gemm_min_macs
    }

    /// `cols` is the batched column count `N·OH·OW`. `Auto` thresholds come
    /// from [`gemm::tune::params`] — the associated constants above are the
    /// compile-time defaults; installing an autotuned [`gemm::tune::TuneParams`]
    /// re-routes shapes the defaults would misclassify on this host.
    fn use_gemm(&self, ckk: usize, cols: usize) -> bool {
        match self.path {
            KernelPath::Gemm => true,
            KernelPath::Direct => false,
            KernelPath::Auto => self.auto_thresholds_pass(ckk, cols),
        }
    }

    fn out_hw(&self, h: usize, w: usize) -> (usize, usize) {
        (
            h + 2 * self.padding - self.kernel + 1,
            w + 2 * self.padding - self.kernel + 1,
        )
    }

    /// Copies `x` (`[N, C, H, W]`) into a zero-padded buffer
    /// `[N, C, H+2p, W+2p]`, so the convolution loops need no bounds checks
    /// and vectorise.
    fn pad_input(&self, x: &Tensor, n: usize, c: usize, h: usize, w: usize) -> Vec<f32> {
        let p = self.padding;
        let (ph, pw) = (h + 2 * p, w + 2 * p);
        let mut out = vec![0.0f32; n * c * ph * pw];
        let xs = x.as_slice();
        for plane in 0..n * c {
            for y in 0..h {
                let src = plane * h * w + y * w;
                let dst = plane * ph * pw + (y + p) * pw + p;
                out[dst..dst + w].copy_from_slice(&xs[src..src + w]);
            }
        }
        out
    }

    /// Lowers the whole batch to one im2col patch matrix
    /// `[C·K·K, N·OH·OW]` with column index `img·OH·OW + oy·OW + ox` and row
    /// index `r = (ic·K + ky)·K + kx`, so the forward pass is a **single**
    /// GEMM over all images (small per-image products would drown in
    /// packing overhead). Every row is built from contiguous `OW`-length
    /// `copy_from_slice` runs out of the padded input.
    fn build_col(&self, x: &Tensor, n: usize, c: usize, h: usize, w: usize) -> Vec<f32> {
        let (k, p) = (self.kernel, self.padding);
        let (oh, ow) = self.out_hw(h, w);
        let (ckk, ohow) = (c * k * k, oh * ow);
        let (ph, pw) = (h + 2 * p, w + 2 * p);
        let xpad = self.pad_input(x, n, c, h, w);
        let cols = n * ohow;
        let mut col = vec![0.0f32; ckk * cols];
        for img in 0..n {
            for ic in 0..c {
                let x_base = (img * c + ic) * ph * pw;
                for ky in 0..k {
                    for kx in 0..k {
                        let r = (ic * k + ky) * k + kx;
                        for oy in 0..oh {
                            let src = x_base + (oy + ky) * pw + kx;
                            let dst = r * cols + img * ohow + oy * ow;
                            col[dst..dst + ow].copy_from_slice(&xpad[src..src + ow]);
                        }
                    }
                }
            }
        }
        col
    }

    /// Scatters one image's slice of the batched patch-matrix gradient back
    /// into its padded input gradient (col2im): overlapping receptive
    /// fields accumulate. `colgrad` has row stride `cols`; image `img`
    /// occupies columns `img·OH·OW ..`.
    #[allow(clippy::too_many_arguments)]
    fn col2im_add(
        colgrad: &[f32],
        cols: usize,
        img: usize,
        gipad_img: &mut [f32],
        c: usize,
        k: usize,
        ph: usize,
        pw: usize,
        oh: usize,
        ow: usize,
    ) {
        let ohow = oh * ow;
        for ic in 0..c {
            for ky in 0..k {
                for kx in 0..k {
                    let r = (ic * k + ky) * k + kx;
                    for oy in 0..oh {
                        let src = r * cols + img * ohow + oy * ow;
                        let dst = ic * ph * pw + (oy + ky) * pw + kx;
                        for (g, &v) in gipad_img[dst..dst + ow]
                            .iter_mut()
                            .zip(&colgrad[src..src + ow])
                        {
                            *g += v;
                        }
                    }
                }
            }
        }
    }

    /// Copies the interior of the padded gradient back to `[N, C, H, W]`.
    fn unpad(&self, gipad: &[f32], n: usize, c: usize, h: usize, w: usize) -> Tensor {
        let p = self.padding;
        let (ph, pw) = (h + 2 * p, w + 2 * p);
        let mut grad_in = Tensor::zeros(&[n, c, h, w]);
        let gi = grad_in.as_mut_slice();
        for plane in 0..n * c {
            for y in 0..h {
                let src = plane * ph * pw + (y + p) * pw + p;
                let dst = plane * h * w + y * w;
                gi[dst..dst + w].copy_from_slice(&gipad[src..src + w]);
            }
        }
        grad_in
    }

    /// GEMM forward: one batched product
    /// `tmp[OC, N·OH·OW] = W[OC, C·K·K] · col`, then a contiguous
    /// scatter-with-bias into the `[N, OC, OH, OW]` output layout.
    fn forward_gemm(
        &mut self,
        x: &Tensor,
        train: bool,
        n: usize,
        c: usize,
        h: usize,
        w: usize,
    ) -> Tensor {
        let (oh, ow) = self.out_hw(h, w);
        let (ckk, ohow) = (c * self.kernel * self.kernel, oh * ow);
        let cols = n * ohow;
        let col = self.build_col(x, n, c, h, w);
        let mut tmp = vec![0.0f32; self.out_channels * cols];
        gemm::gemm(
            self.out_channels,
            ckk,
            cols,
            self.weight.as_slice(),
            &col,
            &mut tmp,
        );
        let mut out = Tensor::zeros(&[n, self.out_channels, oh, ow]);
        let os = out.as_mut_slice();
        let bs = self.bias.as_slice();
        for img in 0..n {
            for (oc, &bias) in bs.iter().enumerate() {
                let src = &tmp[oc * cols + img * ohow..][..ohow];
                let dst = &mut os[(img * self.out_channels + oc) * ohow..][..ohow];
                for (o, &v) in dst.iter_mut().zip(src) {
                    *o = v + bias;
                }
            }
        }
        if train {
            self.cache = Some(ConvCache::Im2col { col, n, h, w });
        }
        out
    }

    /// GEMM backward against the cached batched patch matrix:
    /// `dW += dy · colᵀ` ([`gemm::gemm_nt_acc`]), `dcol = Wᵀ · dy`
    /// ([`gemm::gemm_tn`]) scattered back via col2im — each a single
    /// batched product over all images.
    fn backward_gemm(
        &mut self,
        grad_out: &Tensor,
        col: &[f32],
        n: usize,
        h: usize,
        w: usize,
    ) -> Tensor {
        let c = self.in_channels;
        let (k, p) = (self.kernel, self.padding);
        let (oh, ow) = self.out_hw(h, w);
        let (ckk, ohow) = (c * k * k, oh * ow);
        let (ph, pw) = (h + 2 * p, w + 2 * p);
        let cols = n * ohow;
        let gs = grad_out.as_slice();
        let gb = self.grad_b.as_mut_slice();
        // Regroup dy from [N, OC, OH·OW] to the batched GEMM layout
        // [OC, N·OH·OW] (contiguous OH·OW runs), summing bias gradients on
        // the way through.
        let mut dy = vec![0.0f32; self.out_channels * cols];
        for img in 0..n {
            for (oc, gb_v) in gb.iter_mut().enumerate() {
                let src = &gs[(img * self.out_channels + oc) * ohow..][..ohow];
                *gb_v += src.iter().sum::<f32>();
                dy[oc * cols + img * ohow..][..ohow].copy_from_slice(src);
            }
        }
        gemm::gemm_nt_acc(
            self.out_channels,
            cols,
            ckk,
            &dy,
            col,
            self.grad_w.as_mut_slice(),
        );
        let mut colgrad = vec![0.0f32; ckk * cols];
        gemm::gemm_tn(
            ckk,
            self.out_channels,
            cols,
            self.weight.as_slice(),
            &dy,
            &mut colgrad,
        );
        let mut gipad = vec![0.0f32; n * c * ph * pw];
        for img in 0..n {
            let gipad_img = &mut gipad[img * c * ph * pw..][..c * ph * pw];
            Self::col2im_add(&colgrad, cols, img, gipad_img, c, k, ph, pw, oh, ow);
        }
        self.unpad(&gipad, n, c, h, w)
    }

    /// Direct-loop forward over a pre-padded input (reference kernel).
    fn forward_direct(
        &mut self,
        xpad: Vec<f32>,
        train: bool,
        n: usize,
        c: usize,
        h: usize,
        w: usize,
    ) -> Tensor {
        let (oh, ow) = self.out_hw(h, w);
        let k = self.kernel;
        let (ph, pw) = (h + 2 * self.padding, w + 2 * self.padding);
        let ws = self.weight.as_slice();
        let bs = self.bias.as_slice();
        let mut out = Tensor::zeros(&[n, self.out_channels, oh, ow]);
        let os = out.as_mut_slice();
        for img in 0..n {
            for (oc, &bias) in bs.iter().enumerate() {
                let o_base = ((img * self.out_channels) + oc) * oh * ow;
                os[o_base..o_base + oh * ow].fill(bias);
                for ic in 0..c {
                    let x_base = ((img * c) + ic) * ph * pw;
                    let w_base = ((oc * c) + ic) * k * k;
                    for ky in 0..k {
                        for kx in 0..k {
                            let weight = ws[w_base + ky * k + kx];
                            if weight == 0.0 {
                                continue;
                            }
                            for oy in 0..oh {
                                let xrow = x_base + (oy + ky) * pw + kx;
                                let orow = o_base + oy * ow;
                                let (xr, or) = (&xpad[xrow..xrow + ow], &mut os[orow..orow + ow]);
                                for (o, &v) in or.iter_mut().zip(xr) {
                                    *o += weight * v;
                                }
                            }
                        }
                    }
                }
            }
        }
        if train {
            self.cache = Some(ConvCache::Padded { xpad, n, h, w });
        }
        out
    }

    /// Direct-loop backward against the cached padded input.
    fn backward_direct(
        &mut self,
        grad_out: &Tensor,
        xpad: &[f32],
        n: usize,
        h: usize,
        w: usize,
    ) -> Tensor {
        let c = self.in_channels;
        let k = self.kernel;
        let p = self.padding;
        let (oh, ow) = self.out_hw(h, w);
        let (ph, pw) = (h + 2 * p, w + 2 * p);
        let mut gipad = vec![0.0f32; n * c * ph * pw];
        let gs = grad_out.as_slice();
        let ws = self.weight.as_slice();
        let gw = self.grad_w.as_mut_slice();
        let gb = self.grad_b.as_mut_slice();
        for img in 0..n {
            for (oc, gb_v) in gb.iter_mut().enumerate() {
                let g_base = ((img * self.out_channels) + oc) * oh * ow;
                *gb_v += gs[g_base..g_base + oh * ow].iter().sum::<f32>();
                for ic in 0..c {
                    let x_base = ((img * c) + ic) * ph * pw;
                    let w_base = ((oc * c) + ic) * k * k;
                    for ky in 0..k {
                        for kx in 0..k {
                            let widx = w_base + ky * k + kx;
                            let weight = ws[widx];
                            let mut wacc = 0.0f32;
                            for oy in 0..oh {
                                let xrow = x_base + (oy + ky) * pw + kx;
                                let grow = g_base + oy * ow;
                                let xr = &xpad[xrow..xrow + ow];
                                let gr = &gs[grow..grow + ow];
                                let gir = &mut gipad[xrow..xrow + ow];
                                for ((gi_v, &g), &xv) in gir.iter_mut().zip(gr).zip(xr) {
                                    wacc += g * xv;
                                    *gi_v += g * weight;
                                }
                            }
                            gw[widx] += wacc;
                        }
                    }
                }
            }
        }
        self.unpad(&gipad, n, c, h, w)
    }
}

impl Layer for Conv2d {
    fn name(&self) -> &'static str {
        "conv2d"
    }

    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let [n, c, h, w]: [usize; 4] = x.shape().try_into().expect("conv2d expects [N,C,H,W]");
        assert_eq!(c, self.in_channels, "conv2d channel mismatch");
        let (oh, ow) = self.out_hw(h, w);
        assert!(oh > 0 && ow > 0, "conv2d output collapsed to zero size");
        let ckk = c * self.kernel * self.kernel;
        if self.use_gemm(ckk, n * oh * ow) {
            self.forward_gemm(x, train, n, c, h, w)
        } else {
            let xpad = self.pad_input(x, n, c, h, w);
            self.forward_direct(xpad, train, n, c, h, w)
        }
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let cache = self
            .cache
            .take()
            .expect("backward before forward(train=true)");
        let [gn, goc, _, _]: [usize; 4] = grad_out.shape().try_into().expect("grad shape");
        assert_eq!(goc, self.out_channels);
        let grad_in = match &cache {
            ConvCache::Im2col { col, n, h, w } => {
                assert_eq!(gn, *n);
                self.backward_gemm(grad_out, col, *n, *h, *w)
            }
            ConvCache::Padded { xpad, n, h, w } => {
                assert_eq!(gn, *n);
                self.backward_direct(grad_out, xpad, *n, *h, *w)
            }
        };
        // Restore the cache so repeated backward calls (as the numeric
        // gradient tests do) keep working, matching the old behaviour of
        // retaining the cached input.
        self.cache = Some(cache);
        grad_in
    }

    fn params(&mut self) -> Vec<Param<'_>> {
        vec![
            Param {
                name: "weight",
                values: self.weight.as_mut_slice(),
                grads: self.grad_w.as_mut_slice(),
            },
            Param {
                name: "bias",
                values: self.bias.as_mut_slice(),
                grads: self.grad_b.as_mut_slice(),
            },
        ]
    }

    fn param_len(&self) -> usize {
        self.out_channels * self.in_channels * self.kernel * self.kernel + self.out_channels
    }

    fn output_shape(&self, input: &[usize]) -> Vec<usize> {
        let (oh, ow) = self.out_hw(input[2], input[3]);
        vec![input[0], self.out_channels, oh, ow]
    }

    fn macs(&self, input: &[usize]) -> u64 {
        let (oh, ow) = self.out_hw(input[2], input[3]);
        (input[0] * self.out_channels * oh * ow * self.in_channels * self.kernel * self.kernel)
            as u64
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn ident_kernel_conv() -> Conv2d {
        let mut rng = StdRng::seed_from_u64(0);
        let mut conv = Conv2d::new(1, 1, 3, 1, &mut rng);
        {
            let mut ps = conv.params();
            ps[0].values.fill(0.0);
            ps[0].values[4] = 1.0; // centre tap -> identity
            ps[1].values.fill(0.0);
        }
        conv
    }

    #[test]
    fn identity_kernel_preserves_input() {
        for path in [KernelPath::Direct, KernelPath::Gemm] {
            let mut conv = ident_kernel_conv();
            conv.set_kernel_path(path);
            let x = Tensor::from_vec(&[1, 1, 3, 3], (1..=9).map(|v| v as f32).collect());
            let y = conv.forward(&x, false);
            assert_eq!(y.shape(), &[1, 1, 3, 3]);
            assert_eq!(y.as_slice(), x.as_slice(), "path {path:?}");
        }
    }

    #[test]
    fn valid_convolution_known_value() {
        for path in [KernelPath::Direct, KernelPath::Gemm] {
            let mut rng = StdRng::seed_from_u64(1);
            let mut conv = Conv2d::new(1, 1, 2, 0, &mut rng);
            conv.set_kernel_path(path);
            {
                let mut ps = conv.params();
                ps[0].values.copy_from_slice(&[1., 2., 3., 4.]);
                ps[1].values[0] = 0.5;
            }
            let x = Tensor::from_vec(&[1, 1, 2, 2], vec![1., 1., 1., 1.]);
            let y = conv.forward(&x, false);
            assert_eq!(y.shape(), &[1, 1, 1, 1]);
            assert_eq!(y.as_slice(), &[10.5], "path {path:?}");
        }
    }

    fn check_numeric_gradients(mut conv: Conv2d, x: &Tensor) {
        let y = conv.forward(x, true);
        let gout = Tensor::from_vec(y.shape(), vec![1.0; y.len()]);
        let gx = conv.backward(&gout);

        let eps = 1e-2f32;
        let loss =
            |c: &mut Conv2d, x: &Tensor| -> f32 { c.forward(x, false).as_slice().iter().sum() };
        for &idx in &[0usize, 7, 20, 53] {
            let base = conv.params()[0].values[idx];
            conv.params()[0].values[idx] = base + eps;
            let lp = loss(&mut conv, x);
            conv.params()[0].values[idx] = base - eps;
            let lm = loss(&mut conv, x);
            conv.params()[0].values[idx] = base;
            let numeric = (lp - lm) / (2.0 * eps);
            let analytic = conv.params()[0].grads[idx];
            assert!(
                (numeric - analytic).abs() < 0.05 * analytic.abs().max(1.0),
                "w[{idx}]: numeric {numeric} vs analytic {analytic}"
            );
        }
        // input gradient
        let mut x2 = x.clone();
        for &idx in &[3usize, 17] {
            let base = x2.as_slice()[idx];
            x2.as_mut_slice()[idx] = base + eps;
            let lp = loss(&mut conv, &x2);
            x2.as_mut_slice()[idx] = base - eps;
            let lm = loss(&mut conv, &x2);
            x2.as_mut_slice()[idx] = base;
            let numeric = (lp - lm) / (2.0 * eps);
            assert!((numeric - gx.as_slice()[idx]).abs() < 0.05 * numeric.abs().max(1.0));
        }
        // bias gradient: dL/db = number of output pixels per channel
        let per_channel = 16.0;
        for oc in 0..3 {
            assert!((conv.params()[1].grads[oc] - per_channel).abs() < 1e-3);
        }
    }

    #[test]
    fn gradients_match_numeric() {
        let x = Tensor::from_vec(
            &[1, 2, 4, 4],
            (0..32)
                .map(|i| ((i * 7) % 11) as f32 / 11.0 - 0.5)
                .collect(),
        );
        for path in [KernelPath::Direct, KernelPath::Gemm] {
            let mut rng = StdRng::seed_from_u64(2);
            let mut conv = Conv2d::new(2, 3, 3, 1, &mut rng);
            conv.set_kernel_path(path);
            check_numeric_gradients(conv, &x);
        }
    }

    #[test]
    fn gemm_and_direct_paths_agree() {
        // Large enough that Auto picks GEMM (ckk=27, ohow=64 -> 1728).
        let mut rng = StdRng::seed_from_u64(7);
        let mut a = Conv2d::new(3, 4, 3, 1, &mut rng);
        let mut b = a.clone();
        a.set_kernel_path(KernelPath::Direct);
        b.set_kernel_path(KernelPath::Gemm);
        let x = Tensor::from_vec(
            &[2, 3, 8, 8],
            (0..2 * 3 * 64)
                .map(|i| ((i * 13) % 23) as f32 / 23.0 - 0.5)
                .collect(),
        );
        let ya = a.forward(&x, true);
        let yb = b.forward(&x, true);
        assert_eq!(ya.shape(), yb.shape());
        for (va, vb) in ya.as_slice().iter().zip(yb.as_slice()) {
            assert!((va - vb).abs() < 1e-5, "forward mismatch: {va} vs {vb}");
        }
        let gout = Tensor::from_vec(
            ya.shape(),
            (0..ya.len()).map(|i| (i % 5) as f32 - 2.0).collect(),
        );
        let ga = a.backward(&gout);
        let gb = b.backward(&gout);
        for (va, vb) in ga.as_slice().iter().zip(gb.as_slice()) {
            assert!((va - vb).abs() < 1e-4, "input-grad mismatch: {va} vs {vb}");
        }
        for (va, vb) in a.params()[0].grads.iter().zip(b.params()[0].grads.iter()) {
            assert!((va - vb).abs() < 1e-3, "weight-grad mismatch: {va} vs {vb}");
        }
    }

    #[test]
    fn pointwise_convolution_paths_agree() {
        // 1x1/no-pad: degenerate lowering (col rows == input planes).
        let mut rng = StdRng::seed_from_u64(8);
        let mut a = Conv2d::new(4, 2, 1, 0, &mut rng);
        let mut b = a.clone();
        a.set_kernel_path(KernelPath::Direct);
        b.set_kernel_path(KernelPath::Gemm);
        let x = Tensor::from_vec(
            &[2, 4, 5, 5],
            (0..2 * 4 * 25)
                .map(|i| ((i * 3) % 17) as f32 / 17.0 - 0.4)
                .collect(),
        );
        let ya = a.forward(&x, true);
        let yb = b.forward(&x, true);
        for (va, vb) in ya.as_slice().iter().zip(yb.as_slice()) {
            assert!((va - vb).abs() < 1e-5);
        }
        let gout = Tensor::from_vec(ya.shape(), vec![0.5; ya.len()]);
        let ga = a.backward(&gout);
        let gb = b.backward(&gout);
        for (va, vb) in ga.as_slice().iter().zip(gb.as_slice()) {
            assert!((va - vb).abs() < 1e-5);
        }
    }

    #[test]
    fn auto_path_crosses_threshold() {
        let mut rng = StdRng::seed_from_u64(9);
        // Few output channels: direct regardless of how many columns.
        let conv = Conv2d::new(6, 6, 3, 1, &mut rng);
        assert!(!conv.use_gemm(54, 1 << 20));
        // Shallow reduction (single input channel): direct.
        let conv = Conv2d::new(1, 16, 3, 1, &mut rng);
        assert!(!conv.use_gemm(9, 1 << 20));
        // Channel-rich and deep but tiny total work: direct.
        let conv = Conv2d::new(6, 16, 3, 0, &mut rng);
        assert!(!conv.use_gemm(54, 100));
        // Channel-rich, deep, batch-sized columns: GEMM (unless the
        // reference feature pins the direct path).
        assert_eq!(conv.use_gemm(54, 32 * 100), !cfg!(feature = "reference"));
    }

    #[test]
    fn shapes_and_macs() {
        let mut rng = StdRng::seed_from_u64(3);
        let conv = Conv2d::new(3, 8, 5, 0, &mut rng);
        assert_eq!(conv.output_shape(&[2, 3, 16, 16]), vec![2, 8, 12, 12]);
        assert_eq!(conv.param_len(), 8 * 3 * 25 + 8);
        assert_eq!(conv.macs(&[1, 3, 16, 16]), (8 * 12 * 12 * 3 * 25) as u64);
    }

    #[test]
    #[should_panic(expected = "channel mismatch")]
    fn rejects_channel_mismatch() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut conv = Conv2d::new(2, 1, 3, 1, &mut rng);
        let _ = conv.forward(&Tensor::zeros(&[1, 3, 4, 4]), false);
    }
}
