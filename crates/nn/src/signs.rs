//! `SyntheticSigns`: a parametric traffic-sign-like dataset generator.
//!
//! The paper calibrates its reliability models on GTSRB, a 43-class dataset
//! of real traffic-sign photographs. Real images cannot ship with this
//! reproduction, so this module generates a 43-class synthetic stand-in:
//! each class is a *shape* (circle, triangles, diamond, octagon — the
//! silhouettes traffic signs actually use) crossed with a 3×3 *pictogram*
//! glyph, rendered with random translation, scaling, brightness shift,
//! additive Gaussian noise and occasional occlusion. The difficulty knobs
//! are chosen so that small CNNs land in the same accuracy band as the
//! paper's models (~0.92–0.96), with genuinely overlapping error sets (hard,
//! noisy samples are hard for every architecture), preserving the
//! p / p' / α calibration pipeline end to end.

use crate::data::Dataset;
use crate::init::standard_normal;
use crate::tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Number of classes in the default configuration (matching GTSRB).
pub const GTSRB_CLASSES: usize = 43;

/// Shapes used for class silhouettes.
const SHAPES: usize = 5;

/// 3×3 pictogram masks, chosen to be mutually Hamming-distant.
const PICTOGRAMS: [u16; 9] = [
    0b101_010_101,
    0b010_111_010,
    0b111_000_111,
    0b100_111_001,
    0b011_101_110,
    0b110_010_011,
    0b001_110_100,
    0b111_111_000,
    0b000_101_111,
];

/// Configuration of the synthetic sign generator.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SignConfig {
    /// Number of classes (≤ 45 = shapes × pictograms).
    pub classes: usize,
    /// Square image side length in pixels.
    pub image_size: usize,
    /// Standard deviation of additive Gaussian pixel noise.
    pub noise_std: f32,
    /// Maximum translation jitter in pixels (uniform in ±this).
    pub max_translate: f64,
    /// Relative scale jitter (scale drawn from `1 ± this`).
    pub scale_jitter: f64,
    /// Brightness shift drawn uniform in ±this.
    pub brightness_jitter: f32,
    /// Probability that a random occlusion block is stamped on the image.
    pub occlusion_prob: f64,
}

impl Default for SignConfig {
    fn default() -> Self {
        SignConfig {
            classes: GTSRB_CLASSES,
            image_size: 20,
            noise_std: 0.08,
            max_translate: 1.0,
            scale_jitter: 0.12,
            brightness_jitter: 0.08,
            occlusion_prob: 0.08,
        }
    }
}

impl SignConfig {
    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics if `classes` is 0 or exceeds the 45 distinct shape×pictogram
    /// combinations, or if `image_size < 8`.
    pub fn validate(&self) {
        assert!(
            self.classes > 0 && self.classes <= SHAPES * PICTOGRAMS.len(),
            "classes must be in 1..={}",
            SHAPES * PICTOGRAMS.len()
        );
        assert!(self.image_size >= 8, "image_size must be at least 8");
    }
}

/// Returns `true` if normalised coordinates `(u, v)` fall inside the class
/// silhouette `shape` (unit-scale: the silhouette spans roughly [-1, 1]).
fn in_shape(shape: usize, u: f64, v: f64) -> bool {
    match shape {
        0 => u * u + v * v <= 1.0,                                     // circle
        1 => v <= 0.8 && v >= 1.8 * u.abs() - 1.0,                     // triangle up
        2 => v >= -0.8 && v <= 1.0 - 1.8 * u.abs(),                    // triangle down
        3 => u.abs() + v.abs() <= 1.0,                                 // diamond
        _ => u.abs().max(v.abs()) <= 0.92 && u.abs() + v.abs() <= 1.3, // octagon
    }
}

/// Returns `true` if `(u, v)` falls in a filled pictogram cell.
fn in_pictogram(pictogram: u16, u: f64, v: f64) -> bool {
    const HALF: f64 = 0.55;
    if !(-HALF..=HALF).contains(&u) || !(-HALF..=HALF).contains(&v) {
        return false;
    }
    let cell = 2.0 * HALF / 3.0;
    let col = (((u + HALF) / cell) as usize).min(2);
    let row = (((v + HALF) / cell) as usize).min(2);
    pictogram >> (row * 3 + col) & 1 == 1
}

/// Renders one clean (noise-free, centred, unit-scale) class prototype.
///
/// # Panics
///
/// Panics if `class` is out of range for the configuration.
pub fn render_prototype(cfg: &SignConfig, class: usize) -> Tensor {
    cfg.validate();
    assert!(class < cfg.classes, "class {class} out of range");
    render(cfg, class, 0.0, 0.0, 1.0)
}

fn render(cfg: &SignConfig, class: usize, dx: f64, dy: f64, scale: f64) -> Tensor {
    let s = cfg.image_size;
    let shape = class % SHAPES;
    let pictogram = PICTOGRAMS[class / SHAPES];
    let centre = (s as f64 - 1.0) / 2.0;
    let radius = s as f64 * 0.40 * scale;
    let mut img = Tensor::zeros(&[1, s, s]);
    let data = img.as_mut_slice();
    for py in 0..s {
        for px in 0..s {
            let u = (px as f64 - centre - dx) / radius;
            let v = (py as f64 - centre - dy) / radius;
            let value = if in_shape(shape, u, v) {
                if in_pictogram(pictogram, u, v) {
                    0.95
                } else {
                    0.55
                }
            } else {
                0.12
            };
            data[py * s + px] = value as f32;
        }
    }
    img
}

/// Generates `count` labelled samples (classes cycled round-robin so every
/// class is equally represented), deterministically from `seed`.
pub fn generate(cfg: &SignConfig, count: usize, seed: u64) -> Dataset {
    cfg.validate();
    let mut rng = StdRng::seed_from_u64(seed);
    let s = cfg.image_size;
    let mut data = Vec::with_capacity(count * s * s);
    let mut labels = Vec::with_capacity(count);
    for i in 0..count {
        let class = i % cfg.classes;
        let dx = (rng.random::<f64>() * 2.0 - 1.0) * cfg.max_translate;
        let dy = (rng.random::<f64>() * 2.0 - 1.0) * cfg.max_translate;
        let scale = 1.0 + (rng.random::<f64>() * 2.0 - 1.0) * cfg.scale_jitter;
        let mut img = render(cfg, class, dx, dy, scale);

        let brightness = (rng.random::<f32>() * 2.0 - 1.0) * cfg.brightness_jitter;
        for v in img.as_mut_slice() {
            *v += brightness + cfg.noise_std * standard_normal(&mut rng);
        }
        if rng.random::<f64>() < cfg.occlusion_prob {
            let block = 3.min(s / 3);
            let ox = rng.random_range(0..=(s - block));
            let oy = rng.random_range(0..=(s - block));
            let fill: f32 = rng.random::<f32>();
            for yy in oy..oy + block {
                for xx in ox..ox + block {
                    img.as_mut_slice()[yy * s + xx] = fill;
                }
            }
        }
        for v in img.as_mut_slice() {
            *v = v.clamp(0.0, 1.0);
        }
        data.extend_from_slice(img.as_slice());
        labels.push(class);
    }
    Dataset::new(
        Tensor::from_vec(&[count, 1, s, s], data),
        labels,
        cfg.classes,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prototypes_are_distinct_across_classes() {
        let cfg = SignConfig::default();
        let mut seen: Vec<Vec<u8>> = Vec::new();
        for c in 0..cfg.classes {
            let img = render_prototype(&cfg, c);
            let quantised: Vec<u8> = img.as_slice().iter().map(|&v| (v * 20.0) as u8).collect();
            assert!(
                !seen.contains(&quantised),
                "class {c} duplicates an earlier class"
            );
            seen.push(quantised);
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let cfg = SignConfig::default();
        let a = generate(&cfg, 50, 9);
        let b = generate(&cfg, 50, 9);
        assert_eq!(a.images().as_slice(), b.images().as_slice());
        assert_eq!(a.labels(), b.labels());
        let c = generate(&cfg, 50, 10);
        assert_ne!(a.images().as_slice(), c.images().as_slice());
    }

    #[test]
    fn labels_cover_all_classes_evenly() {
        let cfg = SignConfig {
            classes: 10,
            ..SignConfig::default()
        };
        let d = generate(&cfg, 100, 0);
        let mut counts = [0usize; 10];
        for &l in d.labels() {
            counts[l] += 1;
        }
        assert!(counts.iter().all(|&c| c == 10));
    }

    #[test]
    fn pixels_are_in_unit_range() {
        let d = generate(&SignConfig::default(), 200, 1);
        assert!(d
            .images()
            .as_slice()
            .iter()
            .all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn noise_makes_samples_differ_within_class() {
        let cfg = SignConfig::default();
        let d = generate(&cfg, cfg.classes * 2, 2);
        // samples 0 and 43 are both class 0 but differently augmented
        let s: usize = d.sample_shape().iter().product();
        let a = &d.images().as_slice()[0..s];
        let b = &d.images().as_slice()[cfg.classes * s..(cfg.classes + 1) * s];
        assert_ne!(a, b);
    }

    #[test]
    fn prototype_has_shape_structure() {
        // circle prototype: centre bright (pictogram or shape), corner dark
        let cfg = SignConfig::default();
        let img = render_prototype(&cfg, 0);
        let s = cfg.image_size;
        let corner = img.as_slice()[0];
        let centre = img.as_slice()[(s / 2) * s + s / 2];
        assert!(corner < 0.2, "corner {corner}");
        assert!(centre > 0.4, "centre {centre}");
    }

    #[test]
    #[should_panic(expected = "classes must be in")]
    fn too_many_classes_rejected() {
        let cfg = SignConfig {
            classes: 99,
            ..SignConfig::default()
        };
        cfg.validate();
    }

    #[test]
    fn all_shape_variants_render() {
        let cfg = SignConfig::default();
        for shape_class in 0..SHAPES {
            let img = render_prototype(&cfg, shape_class);
            let lit = img.as_slice().iter().filter(|&&v| v > 0.3).count();
            assert!(lit > 10, "shape {shape_class} renders almost nothing");
        }
    }
}
