//! Evaluation metrics: accuracy, error sets, confusion matrices.
//!
//! *Error sets* are the central calibration object of the paper: for each
//! model `m_i`, `E_i` is the set of test inputs it misclassifies, and the
//! pairwise error dependency `α_{i,j} = |E_i ∩ E_j| / max(|E_i|, |E_j|)`
//! (paper Eq. 8) feeds the reliability functions.

use crate::data::Dataset;
use crate::model::Sequential;

/// Fraction of predictions equal to their label.
///
/// # Panics
///
/// Panics on length mismatch or empty input.
pub fn accuracy(predictions: &[usize], labels: &[usize]) -> f64 {
    assert_eq!(predictions.len(), labels.len(), "length mismatch");
    assert!(!labels.is_empty(), "empty evaluation");
    let hits = predictions
        .iter()
        .zip(labels)
        .filter(|(p, l)| p == l)
        .count();
    hits as f64 / labels.len() as f64
}

/// Per-sample error indicators (`true` = misclassified) for `model` over the
/// whole dataset, evaluated in batches of `batch_size`.
pub fn error_set(model: &mut Sequential, data: &Dataset, batch_size: usize) -> Vec<bool> {
    let mut errors = Vec::with_capacity(data.len());
    let mut i = 0;
    while i < data.len() {
        let end = (i + batch_size).min(data.len());
        let idx: Vec<usize> = (i..end).collect();
        let (x, y) = data.batch(&idx);
        let preds = model.predict(&x);
        errors.extend(preds.iter().zip(&y).map(|(p, l)| p != l));
        i = end;
    }
    errors
}

/// Accuracy of `model` over `data`.
pub fn evaluate_accuracy(model: &mut Sequential, data: &Dataset, batch_size: usize) -> f64 {
    let errors = error_set(model, data, batch_size);
    1.0 - errors.iter().filter(|&&e| e).count() as f64 / errors.len() as f64
}

/// `k × k` confusion matrix; `matrix[truth][prediction]` counts samples.
///
/// # Panics
///
/// Panics if any index is `>= k` or lengths mismatch.
pub fn confusion_matrix(predictions: &[usize], labels: &[usize], k: usize) -> Vec<Vec<usize>> {
    assert_eq!(predictions.len(), labels.len(), "length mismatch");
    let mut m = vec![vec![0usize; k]; k];
    for (&p, &l) in predictions.iter().zip(labels) {
        m[l][p] += 1;
    }
    m
}

/// Pairwise error-set dependency `α_{i,j}` (paper Eq. 8):
/// `|E_i ∩ E_j| / max(|E_i|, |E_j|)`. Returns 0 when both error sets are
/// empty.
///
/// # Panics
///
/// Panics on length mismatch.
pub fn alpha_pair(errors_i: &[bool], errors_j: &[bool]) -> f64 {
    assert_eq!(errors_i.len(), errors_j.len(), "error-set length mismatch");
    let ei = errors_i.iter().filter(|&&e| e).count();
    let ej = errors_j.iter().filter(|&&e| e).count();
    let both = errors_i
        .iter()
        .zip(errors_j)
        .filter(|(&a, &b)| a && b)
        .count();
    let denom = ei.max(ej);
    if denom == 0 {
        0.0
    } else {
        both as f64 / denom as f64
    }
}

/// Mean pairwise dependency over all model pairs (paper Eq. 9 for three
/// models, generalised to `n`).
///
/// # Panics
///
/// Panics with fewer than two error sets.
pub fn alpha_mean(error_sets: &[Vec<bool>]) -> f64 {
    assert!(error_sets.len() >= 2, "need at least two error sets");
    let mut total = 0.0;
    let mut pairs = 0usize;
    for i in 0..error_sets.len() {
        for j in (i + 1)..error_sets.len() {
            total += alpha_pair(&error_sets[i], &error_sets[j]);
            pairs += 1;
        }
    }
    total / pairs as f64
}

#[cfg(test)]
// Exact float assertions are deliberate here: the expected values are
// produced by the same deterministic arithmetic being tested.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_counts_hits() {
        assert_eq!(accuracy(&[1, 2, 3], &[1, 0, 3]), 2.0 / 3.0);
        assert_eq!(accuracy(&[0], &[0]), 1.0);
    }

    #[test]
    fn confusion_matrix_layout() {
        let m = confusion_matrix(&[0, 1, 1, 2], &[0, 1, 2, 2], 3);
        assert_eq!(m[0][0], 1);
        assert_eq!(m[1][1], 1);
        assert_eq!(m[2][1], 1);
        assert_eq!(m[2][2], 1);
        assert_eq!(m[0][1], 0);
    }

    #[test]
    fn alpha_pair_intersection_over_max() {
        let ei = vec![true, true, false, false];
        let ej = vec![true, false, true, false];
        // |Ei|=2, |Ej|=2, intersection=1
        assert_eq!(alpha_pair(&ei, &ej), 0.5);
    }

    #[test]
    fn alpha_pair_identical_sets_is_one() {
        let e = vec![true, false, true];
        assert_eq!(alpha_pair(&e, &e), 1.0);
    }

    #[test]
    fn alpha_pair_disjoint_sets_is_zero() {
        let ei = vec![true, false];
        let ej = vec![false, true];
        assert_eq!(alpha_pair(&ei, &ej), 0.0);
    }

    #[test]
    fn alpha_pair_empty_sets() {
        let e = vec![false, false];
        assert_eq!(alpha_pair(&e, &e), 0.0);
    }

    #[test]
    fn alpha_pair_asymmetric_sizes_use_max() {
        let ei = vec![true, true, true, true];
        let ej = vec![true, false, false, false];
        // intersection 1, max 4
        assert_eq!(alpha_pair(&ei, &ej), 0.25);
    }

    #[test]
    fn alpha_mean_averages_pairs() {
        let e1 = vec![true, false, false];
        let e2 = vec![true, false, false];
        let e3 = vec![false, true, false];
        // α12 = 1, α13 = 0, α23 = 0 → mean 1/3
        let a = alpha_mean(&[e1, e2, e3]);
        assert!((a - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn error_set_matches_model_behaviour() {
        use crate::layers::Flatten;
        use crate::signs::{generate, SignConfig};
        // identity "model": flatten only → predicts argmax pixel, which is
        // essentially arbitrary; just verify sizes and consistency with
        // evaluate_accuracy.
        let cfg = SignConfig {
            classes: 5,
            ..SignConfig::default()
        };
        let data = generate(&cfg, 20, 0);
        let mut m = Sequential::new("flat");
        m.push(Flatten::new());
        let errors = error_set(&mut m, &data, 7);
        assert_eq!(errors.len(), 20);
        let acc = evaluate_accuracy(&mut m, &data, 7);
        let err_rate = errors.iter().filter(|&&e| e).count() as f64 / 20.0;
        assert!((acc + err_rate - 1.0).abs() < 1e-12);
    }
}
