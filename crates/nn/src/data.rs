//! Labelled image datasets and batching.

use crate::tensor::Tensor;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;

/// A labelled image-classification dataset held in memory.
#[derive(Debug, Clone)]
pub struct Dataset {
    images: Tensor, // [N, C, H, W]
    labels: Vec<usize>,
    num_classes: usize,
}

impl Dataset {
    /// Creates a dataset from an image tensor `[N, C, H, W]` and `N` labels.
    ///
    /// # Panics
    ///
    /// Panics on shape/label mismatch or out-of-range labels.
    pub fn new(images: Tensor, labels: Vec<usize>, num_classes: usize) -> Self {
        assert_eq!(images.shape().len(), 4, "images must be [N, C, H, W]");
        assert_eq!(
            images.shape()[0],
            labels.len(),
            "image/label count mismatch"
        );
        assert!(
            labels.iter().all(|&l| l < num_classes),
            "label out of range for {num_classes} classes"
        );
        Dataset {
            images,
            labels,
            num_classes,
        }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Returns `true` if the dataset has no samples.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Shape of a single sample: `[C, H, W]`.
    pub fn sample_shape(&self) -> &[usize] {
        &self.images.shape()[1..]
    }

    /// All labels.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// The full image tensor `[N, C, H, W]`.
    pub fn images(&self) -> &Tensor {
        &self.images
    }

    /// Gathers the samples at `indices` into a batch.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range.
    pub fn batch(&self, indices: &[usize]) -> (Tensor, Vec<usize>) {
        let sample: usize = self.sample_shape().iter().product();
        let mut data = Vec::with_capacity(indices.len() * sample);
        let mut labels = Vec::with_capacity(indices.len());
        let xs = self.images.as_slice();
        for &i in indices {
            assert!(i < self.len(), "index {i} out of range");
            data.extend_from_slice(&xs[i * sample..(i + 1) * sample]);
            labels.push(self.labels[i]);
        }
        let mut shape = vec![indices.len()];
        shape.extend_from_slice(self.sample_shape());
        (Tensor::from_vec(&shape, data), labels)
    }

    /// A shuffled permutation of all sample indices.
    pub fn shuffled_indices(&self, rng: &mut StdRng) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..self.len()).collect();
        idx.shuffle(rng);
        idx
    }

    /// Splits into `(first, second)` with `frac` of (shuffled) samples in
    /// the first part.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < frac < 1` and both parts end up non-empty.
    pub fn split(&self, frac: f64, rng: &mut StdRng) -> (Dataset, Dataset) {
        assert!(frac > 0.0 && frac < 1.0, "frac must be in (0,1)");
        let idx = self.shuffled_indices(rng);
        let cut = ((self.len() as f64) * frac).round() as usize;
        assert!(cut > 0 && cut < self.len(), "split produced an empty part");
        let (a, b) = idx.split_at(cut);
        let (ia, la) = self.batch(a);
        let (ib, lb) = self.batch(b);
        (
            Dataset::new(ia, la, self.num_classes),
            Dataset::new(ib, lb, self.num_classes),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn toy() -> Dataset {
        let images = Tensor::from_vec(&[4, 1, 1, 2], (0..8).map(|v| v as f32).collect());
        Dataset::new(images, vec![0, 1, 0, 1], 2)
    }

    #[test]
    fn construction_and_accessors() {
        let d = toy();
        assert_eq!(d.len(), 4);
        assert!(!d.is_empty());
        assert_eq!(d.num_classes(), 2);
        assert_eq!(d.sample_shape(), &[1, 1, 2]);
        assert_eq!(d.labels(), &[0, 1, 0, 1]);
    }

    #[test]
    fn batch_gathers_rows() {
        let d = toy();
        let (x, y) = d.batch(&[2, 0]);
        assert_eq!(x.shape(), &[2, 1, 1, 2]);
        assert_eq!(x.as_slice(), &[4., 5., 0., 1.]);
        assert_eq!(y, vec![0, 0]);
    }

    #[test]
    fn split_partitions_all_samples() {
        let d = toy();
        let mut rng = StdRng::seed_from_u64(0);
        let (a, b) = d.split(0.5, &mut rng);
        assert_eq!(a.len() + b.len(), d.len());
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn shuffle_is_permutation_and_deterministic() {
        let d = toy();
        let p1 = d.shuffled_indices(&mut StdRng::seed_from_u64(7));
        let p2 = d.shuffled_indices(&mut StdRng::seed_from_u64(7));
        assert_eq!(p1, p2);
        let mut sorted = p1.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "label out of range")]
    fn rejects_bad_labels() {
        let images = Tensor::zeros(&[1, 1, 1, 1]);
        let _ = Dataset::new(images, vec![5], 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn batch_rejects_bad_index() {
        let _ = toy().batch(&[9]);
    }
}
