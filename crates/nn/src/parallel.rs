//! Deterministic fan-out helpers for the compute-heavy outer loops.
//!
//! The thread count is controlled by the `MVML_THREADS` environment variable
//! (falling back to the machine's available parallelism), so benchmark and
//! table-regeneration runs are reproducible: every parallelized loop in this
//! workspace partitions work so that **results are identical for any thread
//! count** — threads only change which worker computes which disjoint slice,
//! never the accumulation order within a slice.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Process-wide override installed by [`with_thread_count`]; 0 = none.
static OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Serializes [`with_thread_count`] callers so concurrent tests don't race
/// on the override.
static OVERRIDE_GUARD: Mutex<()> = Mutex::new(());

/// The number of worker threads compute kernels should use.
///
/// Resolution order: an active [`with_thread_count`] override, then the
/// `MVML_THREADS` environment variable (a positive integer), then the
/// machine's available parallelism.
pub fn thread_count() -> usize {
    let forced = OVERRIDE.load(Ordering::Relaxed);
    if forced > 0 {
        return forced;
    }
    if let Ok(raw) = std::env::var("MVML_THREADS") {
        if let Ok(n) = raw.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// [`thread_count`] clamped to the machine's available parallelism — the
/// worker count compute-bound kernels (GEMM) should actually spawn.
///
/// A compute-bound kernel gains nothing from more workers than cores:
/// oversubscribing only adds spawn latency and context-switch overhead (the
/// committed `BENCH_nn.json` baseline recorded *negative* 1→4 thread scaling
/// on a 1-core host for exactly this reason). Results never depend on the
/// worker count — workers own disjoint output slices — so clamping is purely
/// a scheduling decision, not a semantic one.
pub fn worker_count() -> usize {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    thread_count().min(cores)
}

thread_local! {
    /// True while this thread is inside [`with_thread_count`], making
    /// nested calls skip the (non-reentrant) guard mutex.
    static HOLDING_GUARD: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Restores the previous override even if the wrapped closure panics.
struct RestoreOverride {
    previous: usize,
    took_guard: bool,
}

impl Drop for RestoreOverride {
    fn drop(&mut self) {
        OVERRIDE.store(self.previous, Ordering::SeqCst);
        if self.took_guard {
            HOLDING_GUARD.with(|h| h.set(false));
        }
    }
}

/// Runs `f` with [`thread_count`] forced to `n` — the in-process equivalent
/// of setting `MVML_THREADS`, used by determinism tests to compare thread
/// counts without re-spawning the process. Concurrent callers from other
/// threads are serialized; nested calls on the same thread are re-entrant.
pub fn with_thread_count<R>(n: usize, f: impl FnOnce() -> R) -> R {
    assert!(n > 0, "thread count must be positive");
    let nested = HOLDING_GUARD.with(|h| h.replace(true));
    let _guard = if nested {
        None
    } else {
        Some(OVERRIDE_GUARD.lock().unwrap_or_else(|e| e.into_inner()))
    };
    let _restore = RestoreOverride {
        previous: OVERRIDE.swap(n, Ordering::SeqCst),
        took_guard: !nested,
    };
    f()
}

/// A scoped fan-out pool over a fixed number of workers.
///
/// Not a persistent pool: workers are scoped threads spawned per call,
/// which keeps the implementation safe-Rust and borrow-friendly (closures
/// may borrow from the caller's stack). With one worker every method runs
/// inline on the calling thread, so `MVML_THREADS=1` gives a genuinely
/// serial, easily-profiled execution.
#[derive(Debug, Clone, Copy)]
pub struct ThreadPool {
    workers: usize,
}

impl ThreadPool {
    /// A pool sized by [`thread_count`].
    pub fn new() -> Self {
        ThreadPool {
            workers: thread_count(),
        }
    }

    /// A pool with an explicit worker count.
    pub fn with_workers(workers: usize) -> Self {
        assert!(workers > 0, "worker count must be positive");
        ThreadPool { workers }
    }

    /// Number of workers this pool fans out to.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Applies `f` to every item, in parallel across workers, returning
    /// results in input order. Items are split into contiguous chunks (one
    /// per worker), so output order never depends on scheduling.
    pub fn map<I, T, F>(&self, items: Vec<I>, f: F) -> Vec<T>
    where
        I: Send,
        T: Send,
        F: Fn(I) -> T + Sync,
    {
        let total = items.len();
        if self.workers == 1 || total <= 1 {
            return items.into_iter().map(f).collect();
        }
        let chunk = total.div_ceil(self.workers);
        let mut chunks: Vec<Vec<I>> = Vec::new();
        let mut items = items;
        while !items.is_empty() {
            let rest = items.split_off(items.len().min(chunk));
            chunks.push(items);
            items = rest;
        }
        let f = &f;
        let mut gathered: Vec<Vec<T>> = Vec::new();
        crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = chunks
                .into_iter()
                .map(|chunk| scope.spawn(move |_| chunk.into_iter().map(f).collect::<Vec<T>>()))
                .collect();
            for handle in handles {
                gathered.push(handle.join().expect("pool worker panicked"));
            }
        })
        .expect("pool scope");
        gathered.into_iter().flatten().collect()
    }

    /// [`ThreadPool::map`] with telemetry: emits one
    /// [`mvml_obs::TelemetryEvent::PoolRun`] per call, timing the whole
    /// fan-out (queueing/chunking plus execution) as one span. Results are
    /// identical to `map` — the recorder is observe-only, and with a
    /// disabled recorder no clock is read and no event is built.
    pub fn map_recorded<I, T, F>(
        &self,
        recorder: &mvml_obs::Recorder,
        label: &str,
        items: Vec<I>,
        f: F,
    ) -> Vec<T>
    where
        I: Send,
        T: Send,
        F: Fn(I) -> T + Sync,
    {
        let span = recorder.span();
        let count = items.len();
        let out = self.map(items, f);
        recorder.emit_timed(span.stop(), || mvml_obs::TelemetryEvent::PoolRun {
            label: label.to_string(),
            items: count,
            workers: self.workers,
        });
        out
    }

    /// Applies `f` to every element of `items` in place, in parallel across
    /// workers. Each element is touched by exactly one worker.
    pub fn for_each_mut<T, F>(&self, items: &mut [T], f: F)
    where
        T: Send,
        F: Fn(usize, &mut T) + Sync,
    {
        let total = items.len();
        if self.workers == 1 || total <= 1 {
            for (i, item) in items.iter_mut().enumerate() {
                f(i, item);
            }
            return;
        }
        let chunk = total.div_ceil(self.workers);
        let f = &f;
        crossbeam::thread::scope(|scope| {
            for (c, slice) in items.chunks_mut(chunk).enumerate() {
                scope.spawn(move |_| {
                    for (i, item) in slice.iter_mut().enumerate() {
                        f(c * chunk + i, item);
                    }
                });
            }
        })
        .expect("pool scope");
    }
}

impl Default for ThreadPool {
    fn default() -> Self {
        ThreadPool::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_order_for_any_worker_count() {
        let items: Vec<u64> = (0..37).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * x).collect();
        for workers in [1, 2, 3, 8, 64] {
            let pool = ThreadPool::with_workers(workers);
            let got = pool.map(items.clone(), |x| x * x);
            assert_eq!(got, expect, "workers = {workers}");
        }
    }

    #[test]
    fn for_each_mut_touches_every_index_once() {
        for workers in [1, 3, 5] {
            let mut data = vec![0usize; 23];
            ThreadPool::with_workers(workers).for_each_mut(&mut data, |i, slot| {
                *slot += i + 1;
            });
            let expect: Vec<usize> = (1..=23).collect();
            assert_eq!(data, expect, "workers = {workers}");
        }
    }

    #[test]
    fn with_thread_count_overrides_and_restores() {
        let inside = with_thread_count(3, thread_count);
        assert_eq!(inside, 3);
        let nested = with_thread_count(2, || with_thread_count(5, thread_count));
        assert_eq!(nested, 5);
    }

    #[test]
    fn pool_default_uses_thread_count() {
        let workers = with_thread_count(4, || ThreadPool::new().workers());
        assert_eq!(workers, 4);
    }
}
