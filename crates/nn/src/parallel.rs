//! Deterministic fan-out helpers for the compute-heavy outer loops.
//!
//! The thread count is controlled by the `MVML_THREADS` environment variable
//! (falling back to the machine's available parallelism), so benchmark and
//! table-regeneration runs are reproducible: every parallelized loop in this
//! workspace partitions work so that **results are identical for any thread
//! count** — threads only change which worker computes which disjoint slice,
//! never the accumulation order within a slice.

use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Process-wide override installed by [`with_thread_count`]; 0 = none.
static OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Serializes [`with_thread_count`] callers so concurrent tests don't race
/// on the override.
static OVERRIDE_GUARD: Mutex<()> = Mutex::new(());

/// A malformed environment-variable knob (`MVML_THREADS`, `MVML_SERVE_*`).
///
/// Misconfiguration is rejected loudly, never silently defaulted: a
/// benchmark run with `MVML_THREADS=fourteen` quietly falling back to the
/// machine's core count would report numbers for a configuration nobody
/// asked for.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EnvParseError {
    /// The environment variable that failed to parse.
    pub var: String,
    /// Its raw value.
    pub value: String,
    /// Why it was rejected.
    pub reason: EnvParseErrorKind,
}

/// Why an environment knob was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum EnvParseErrorKind {
    /// The value is not a base-10 unsigned integer.
    NotAnInteger,
    /// The value parsed but is zero (every knob here is a positive count).
    Zero,
}

impl fmt::Display for EnvParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.reason {
            EnvParseErrorKind::NotAnInteger => write!(
                f,
                "{}={:?} is not a positive integer; set a base-10 count like {}=4 or unset it",
                self.var, self.value, self.var
            ),
            EnvParseErrorKind::Zero => write!(
                f,
                "{}=0 is not a valid count; set a positive value or unset {} to use the default",
                self.var, self.var
            ),
        }
    }
}

impl std::error::Error for EnvParseError {}

/// Strictly parses a positive-integer environment knob value.
///
/// Accepts exactly a (whitespace-trimmed) base-10 positive integer;
/// anything else — empty, garbage, signs, hex, or zero — is a typed
/// [`EnvParseError`] naming the variable. Shared by `MVML_THREADS` here
/// and the `MVML_SERVE_*` knobs in `mvml-serve`.
pub fn parse_positive_env(var: &str, raw: &str) -> Result<usize, EnvParseError> {
    let trimmed = raw.trim();
    match trimmed.parse::<usize>() {
        // `usize::from_str` accepts a leading '+'; reject it for a strict
        // "what you typed is what runs" contract.
        Ok(_) if trimmed.starts_with('+') => Err(EnvParseError {
            var: var.to_string(),
            value: raw.to_string(),
            reason: EnvParseErrorKind::NotAnInteger,
        }),
        Ok(0) => Err(EnvParseError {
            var: var.to_string(),
            value: raw.to_string(),
            reason: EnvParseErrorKind::Zero,
        }),
        Ok(n) => Ok(n),
        Err(_) => Err(EnvParseError {
            var: var.to_string(),
            value: raw.to_string(),
            reason: EnvParseErrorKind::NotAnInteger,
        }),
    }
}

/// The number of worker threads compute kernels should use, or a typed
/// error if `MVML_THREADS` is set to something invalid.
///
/// Resolution order: an active [`with_thread_count`] override, then the
/// `MVML_THREADS` environment variable (a positive integer), then the
/// machine's available parallelism.
pub fn try_thread_count() -> Result<usize, EnvParseError> {
    let forced = OVERRIDE.load(Ordering::Relaxed);
    if forced > 0 {
        return Ok(forced);
    }
    if let Ok(raw) = std::env::var("MVML_THREADS") {
        return parse_positive_env("MVML_THREADS", &raw);
    }
    Ok(std::thread::available_parallelism().map_or(1, |n| n.get()))
}

/// The number of worker threads compute kernels should use.
///
/// # Panics
///
/// Panics with a configuration-naming message if `MVML_THREADS` is set to
/// zero or garbage — an invalid knob must stop the run, not silently
/// reconfigure it. Use [`try_thread_count`] for a typed error.
#[allow(clippy::expect_used)] // documented panic with a fallible sibling
pub fn thread_count() -> usize {
    try_thread_count()
        .map_err(|e| e.to_string())
        .expect("invalid MVML_THREADS")
}

/// [`thread_count`] clamped to the machine's available parallelism — the
/// worker count compute-bound kernels (GEMM) should actually spawn.
///
/// A compute-bound kernel gains nothing from more workers than cores:
/// oversubscribing only adds spawn latency and context-switch overhead (the
/// committed `BENCH_nn.json` baseline recorded *negative* 1→4 thread scaling
/// on a 1-core host for exactly this reason). Results never depend on the
/// worker count — workers own disjoint output slices — so clamping is purely
/// a scheduling decision, not a semantic one.
pub fn worker_count() -> usize {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    thread_count().min(cores)
}

thread_local! {
    /// True while this thread is inside [`with_thread_count`], making
    /// nested calls skip the (non-reentrant) guard mutex.
    static HOLDING_GUARD: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Restores the previous override even if the wrapped closure panics.
struct RestoreOverride {
    previous: usize,
    took_guard: bool,
}

impl Drop for RestoreOverride {
    fn drop(&mut self) {
        OVERRIDE.store(self.previous, Ordering::SeqCst);
        if self.took_guard {
            HOLDING_GUARD.with(|h| h.set(false));
        }
    }
}

/// Runs `f` with [`thread_count`] forced to `n` — the in-process equivalent
/// of setting `MVML_THREADS`, used by determinism tests to compare thread
/// counts without re-spawning the process. Concurrent callers from other
/// threads are serialized; nested calls on the same thread are re-entrant.
pub fn with_thread_count<R>(n: usize, f: impl FnOnce() -> R) -> R {
    assert!(n > 0, "thread count must be positive");
    let nested = HOLDING_GUARD.with(|h| h.replace(true));
    let _guard = if nested {
        None
    } else {
        Some(OVERRIDE_GUARD.lock().unwrap_or_else(|e| e.into_inner()))
    };
    let _restore = RestoreOverride {
        previous: OVERRIDE.swap(n, Ordering::SeqCst),
        took_guard: !nested,
    };
    f()
}

/// A scoped fan-out pool over a fixed number of workers.
///
/// Not a persistent pool: workers are scoped threads spawned per call,
/// which keeps the implementation safe-Rust and borrow-friendly (closures
/// may borrow from the caller's stack). With one worker every method runs
/// inline on the calling thread, so `MVML_THREADS=1` gives a genuinely
/// serial, easily-profiled execution.
#[derive(Debug, Clone, Copy)]
pub struct ThreadPool {
    workers: usize,
}

impl ThreadPool {
    /// A pool sized by [`thread_count`].
    pub fn new() -> Self {
        ThreadPool {
            workers: thread_count(),
        }
    }

    /// A pool with an explicit worker count.
    pub fn with_workers(workers: usize) -> Self {
        assert!(workers > 0, "worker count must be positive");
        ThreadPool { workers }
    }

    /// Number of workers this pool fans out to.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Applies `f` to every item, in parallel across workers, returning
    /// results in input order. Items are split into contiguous chunks (one
    /// per worker), so output order never depends on scheduling.
    pub fn map<I, T, F>(&self, items: Vec<I>, f: F) -> Vec<T>
    where
        I: Send,
        T: Send,
        F: Fn(I) -> T + Sync,
    {
        let total = items.len();
        if self.workers == 1 || total <= 1 {
            return items.into_iter().map(f).collect();
        }
        let chunk = total.div_ceil(self.workers);
        let mut chunks: Vec<Vec<I>> = Vec::new();
        let mut items = items;
        while !items.is_empty() {
            let rest = items.split_off(items.len().min(chunk));
            chunks.push(items);
            items = rest;
        }
        let f = &f;
        let mut gathered: Vec<Vec<T>> = Vec::new();
        crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = chunks
                .into_iter()
                .map(|chunk| scope.spawn(move |_| chunk.into_iter().map(f).collect::<Vec<T>>()))
                .collect();
            for handle in handles {
                gathered.push(handle.join().expect("pool worker panicked"));
            }
        })
        .expect("pool scope");
        gathered.into_iter().flatten().collect()
    }

    /// [`ThreadPool::map`] with telemetry: emits one
    /// [`mvml_obs::TelemetryEvent::PoolRun`] per call, timing the whole
    /// fan-out (queueing/chunking plus execution) as one span. Results are
    /// identical to `map` — the recorder is observe-only, and with a
    /// disabled recorder no clock is read and no event is built.
    pub fn map_recorded<I, T, F>(
        &self,
        recorder: &mvml_obs::Recorder,
        label: &str,
        items: Vec<I>,
        f: F,
    ) -> Vec<T>
    where
        I: Send,
        T: Send,
        F: Fn(I) -> T + Sync,
    {
        let span = recorder.span();
        let count = items.len();
        let out = self.map(items, f);
        recorder.emit_timed(span.stop(), || mvml_obs::TelemetryEvent::PoolRun {
            label: label.to_string(),
            items: count,
            workers: self.workers,
        });
        out
    }

    /// Applies `f` to every element of `items` in place, in parallel across
    /// workers. Each element is touched by exactly one worker.
    pub fn for_each_mut<T, F>(&self, items: &mut [T], f: F)
    where
        T: Send,
        F: Fn(usize, &mut T) + Sync,
    {
        let total = items.len();
        if self.workers == 1 || total <= 1 {
            for (i, item) in items.iter_mut().enumerate() {
                f(i, item);
            }
            return;
        }
        let chunk = total.div_ceil(self.workers);
        let f = &f;
        crossbeam::thread::scope(|scope| {
            for (c, slice) in items.chunks_mut(chunk).enumerate() {
                scope.spawn(move |_| {
                    for (i, item) in slice.iter_mut().enumerate() {
                        f(c * chunk + i, item);
                    }
                });
            }
        })
        .expect("pool scope");
    }
}

impl Default for ThreadPool {
    fn default() -> Self {
        ThreadPool::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_order_for_any_worker_count() {
        let items: Vec<u64> = (0..37).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * x).collect();
        for workers in [1, 2, 3, 8, 64] {
            let pool = ThreadPool::with_workers(workers);
            let got = pool.map(items.clone(), |x| x * x);
            assert_eq!(got, expect, "workers = {workers}");
        }
    }

    #[test]
    fn for_each_mut_touches_every_index_once() {
        for workers in [1, 3, 5] {
            let mut data = vec![0usize; 23];
            ThreadPool::with_workers(workers).for_each_mut(&mut data, |i, slot| {
                *slot += i + 1;
            });
            let expect: Vec<usize> = (1..=23).collect();
            assert_eq!(data, expect, "workers = {workers}");
        }
    }

    #[test]
    fn env_parser_accepts_exactly_positive_integers() {
        assert_eq!(parse_positive_env("MVML_THREADS", "4"), Ok(4));
        assert_eq!(parse_positive_env("MVML_THREADS", "  16 "), Ok(16));
        assert_eq!(parse_positive_env("MVML_THREADS", "1"), Ok(1));
        for bad in ["", " ", "fourteen", "4.0", "-2", "+3", "0x10", "4 threads"] {
            let err =
                parse_positive_env("MVML_SERVE_SHARDS", bad).expect_err("garbage must be rejected");
            assert_eq!(err.reason, EnvParseErrorKind::NotAnInteger, "value {bad:?}");
            assert!(
                err.to_string().contains("MVML_SERVE_SHARDS"),
                "error names the variable: {err}"
            );
        }
        let err = parse_positive_env("MVML_THREADS", "0").expect_err("zero rejected");
        assert_eq!(err.reason, EnvParseErrorKind::Zero);
        assert!(err.to_string().contains("positive"), "actionable: {err}");
    }

    #[test]
    fn with_thread_count_overrides_and_restores() {
        let inside = with_thread_count(3, thread_count);
        assert_eq!(inside, 3);
        let nested = with_thread_count(2, || with_thread_count(5, thread_count));
        assert_eq!(nested, 5);
    }

    #[test]
    fn pool_default_uses_thread_count() {
        let workers = with_thread_count(4, || ThreadPool::new().workers());
        assert_eq!(workers, 4);
    }
}
