//! Exact i8×i8→i32 matrix multiplication for quantized inference.
//!
//! The panel layout is chosen for `_mm256_madd_epi16`: the k dimension is
//! processed in **pairs** (zero-padding an odd trailing k), and each packed
//! panel interleaves the pair —
//!
//! - A panels: per k-pair step, `QMR` rows × 2 bytes: `[a(k0,r), a(k1,r)]`
//! - B panels: per k-pair step, `QNR` cols × 2 bytes: `[b(k0,c), b(k1,c)]`
//!
//! so one 32-byte B load covers a full 16-column tile step. The scalar
//! fallback consumes the identical layout with immediate i32 widening,
//! making the two kernels bit-for-bit interchangeable — integer GEMM has no
//! accumulation-order sensitivity, so [`gemm_i8`] is deterministic across
//! kernels, hosts and thread counts by construction.
//!
//! Operands are small in this workspace (weights × one frame's im2col), so
//! the driver packs both operands whole and runs serially; module-level
//! fan-out (one thread per N-version module) provides the parallelism.

use super::kernels::{self, QMR, QNR};

/// Maximum supported shared dimension: `k · 127² ≤ i32::MAX` with ~16×
/// headroom, so tile accumulators can never wrap.
pub const MAX_K: usize = 1 << 17;

/// `C = A·B` with `A: [m, k]` i8, `B: [k, n]` i8, `C: [m, n]` i32, all
/// row-major. Exact integer arithmetic — no rounding, no saturation.
///
/// # Panics
///
/// Panics if a slice length disagrees with its dimensions or `k` exceeds
/// [`MAX_K`].
pub fn gemm_i8(m: usize, k: usize, n: usize, a: &[i8], b: &[i8], c: &mut [i32]) {
    assert_eq!(a.len(), m * k, "A must be {m}x{k}");
    assert_eq!(b.len(), k * n, "B must be {k}x{n}");
    assert_eq!(c.len(), m * n, "C must be {m}x{n}");
    assert!(k <= MAX_K, "k = {k} exceeds i32 accumulator headroom");
    if m == 0 || n == 0 {
        return;
    }
    if k == 0 {
        c.fill(0);
        return;
    }
    let steps = k.div_ceil(2);
    let a_pack = pack_a_pairs(m, k, a);
    let b_pack = pack_b_pairs(k, n, b);
    let row_panels = m.div_ceil(QMR);
    let col_panels = n.div_ceil(QNR);
    let mut tile = [0i32; QMR * QNR];
    for rp in 0..row_panels {
        let r0 = rp * QMR;
        let live_rows = QMR.min(m - r0);
        let a_panel = &a_pack[rp * steps * 2 * QMR..][..steps * 2 * QMR];
        for cp in 0..col_panels {
            let c0 = cp * QNR;
            let live_cols = QNR.min(n - c0);
            let b_panel = &b_pack[cp * steps * 2 * QNR..][..steps * 2 * QNR];
            kernels::run_i8(steps, a_panel, b_panel, &mut tile);
            for (r, tile_row) in tile.chunks_exact(QNR).enumerate().take(live_rows) {
                let dst = &mut c[(r0 + r) * n + c0..][..live_cols];
                dst.copy_from_slice(&tile_row[..live_cols]);
            }
        }
    }
}

/// Packs `A: [m, k]` into `QMR`-row pair-interleaved panels, zero-padding
/// both the row remainder and an odd trailing k (0 contributes nothing to
/// the exact sum).
fn pack_a_pairs(m: usize, k: usize, a: &[i8]) -> Vec<i8> {
    let steps = k.div_ceil(2);
    let row_panels = m.div_ceil(QMR);
    let mut pack = vec![0i8; row_panels * steps * 2 * QMR];
    for (rp, panel) in pack.chunks_exact_mut(steps * 2 * QMR).enumerate() {
        let r0 = rp * QMR;
        let live = QMR.min(m - r0);
        for (step, slot) in panel.chunks_exact_mut(2 * QMR).enumerate() {
            let p = step * 2;
            for r in 0..live {
                slot[2 * r] = a[(r0 + r) * k + p];
                if p + 1 < k {
                    slot[2 * r + 1] = a[(r0 + r) * k + p + 1];
                }
            }
        }
    }
    pack
}

/// Packs `B: [k, n]` into `QNR`-column pair-interleaved panels, zero-padding
/// the column remainder and an odd trailing k.
fn pack_b_pairs(k: usize, n: usize, b: &[i8]) -> Vec<i8> {
    let steps = k.div_ceil(2);
    let col_panels = n.div_ceil(QNR);
    let mut pack = vec![0i8; col_panels * steps * 2 * QNR];
    for (cp, panel) in pack.chunks_exact_mut(steps * 2 * QNR).enumerate() {
        let c0 = cp * QNR;
        let live = QNR.min(n - c0);
        for (step, slot) in panel.chunks_exact_mut(2 * QNR).enumerate() {
            let p = step * 2;
            let row0 = &b[p * n + c0..][..live];
            for (c, &v) in row0.iter().enumerate() {
                slot[2 * c] = v;
            }
            if p + 1 < k {
                let row1 = &b[(p + 1) * n + c0..][..live];
                for (c, &v) in row1.iter().enumerate() {
                    slot[2 * c + 1] = v;
                }
            }
        }
    }
    pack
}

/// Naive i32 reference used by the parity tests.
#[cfg(test)]
pub(crate) fn naive_i8(m: usize, k: usize, n: usize, a: &[i8], b: &[i8]) -> Vec<i32> {
    let mut c = vec![0i32; m * n];
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0i32;
            for p in 0..k {
                acc += i32::from(a[i * k + p]) * i32::from(b[p * n + j]);
            }
            c[i * n + j] = acc;
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::kernels::with_scalar_kernel;

    fn arb_i8(len: usize, seed: u64) -> Vec<i8> {
        let mut x = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        (0..len)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                // Quantized range [-127, 127] (−128 never produced by the
                // symmetric quantizer).
                ((x >> 32) % 255) as i8
            })
            .map(|v| if v == -128 { 127 } else { v })
            .collect()
    }

    #[test]
    fn matches_naive_on_awkward_shapes() {
        // Remainder tiles in every dimension, odd k (pair padding), k and n
        // crossing panel boundaries.
        for &(m, k, n) in &[
            (1, 1, 1),
            (3, 5, 7),
            (4, 8, 16),
            (5, 9, 17),
            (7, 31, 33),
            (13, 54, 40),
            (6, 401, 19),
        ] {
            let a = arb_i8(m * k, 11 + m as u64);
            let b = arb_i8(k * n, 13 + n as u64);
            let mut c = vec![i32::MIN; m * n];
            gemm_i8(m, k, n, &a, &b, &mut c);
            assert_eq!(c, naive_i8(m, k, n, &a, &b), "({m},{k},{n})");
        }
    }

    #[test]
    fn simd_and_scalar_kernels_are_bitwise_identical() {
        let (m, k, n) = (9, 77, 35);
        let a = arb_i8(m * k, 3);
        let b = arb_i8(k * n, 4);
        let mut active = vec![0i32; m * n];
        gemm_i8(m, k, n, &a, &b, &mut active);
        let forced = with_scalar_kernel(|| {
            let mut c = vec![0i32; m * n];
            gemm_i8(m, k, n, &a, &b, &mut c);
            c
        });
        assert_eq!(active, forced);
    }

    #[test]
    fn extreme_values_do_not_wrap() {
        // All-|127| operands at a k large enough to stress the accumulator:
        // k · 127² = 127⁴ ≈ 2.6e8 < i32::MAX.
        let (m, k, n) = (2, 127 * 127, 2);
        let a = vec![127i8; m * k];
        let b = vec![-127i8; k * n];
        let mut c = vec![0i32; m * n];
        gemm_i8(m, k, n, &a, &b, &mut c);
        assert!(c.iter().all(|&v| v == -(127 * 127) * (127 * 127)));
    }

    #[test]
    fn zero_k_zeroes_output() {
        let mut c = vec![7i32; 6];
        gemm_i8(2, 0, 3, &[], &[], &mut c);
        assert_eq!(c, vec![0; 6]);
    }
}
