//! One-shot GEMM autotuner: measured direct-vs-GEMM crossover thresholds
//! and cache-block sizes, replacing guessed constants.
//!
//! ## Why install is explicit
//!
//! [`params`] returns the static [`TuneParams::default`] until [`install`]
//! is called, so library behaviour is deterministic by default: two
//! processes (or the campaign driver's byte-compare gate) always agree
//! without ever reading a clock. Measurement is an explicit opt-in —
//! `bench_summary` runs [`autotune`], installs the winner for the rest of
//! the process, and writes the full report to `results/TUNE_nn.json` for
//! inspection and reuse ([`load_report`] / [`install`]).
//!
//! ## What gets measured
//!
//! 1. **Conv routing** ([`ConvProbe`]): each probe shape (the committed
//!    bench shapes plus the perception-detector shapes) is timed on both
//!    the direct loops and the im2col+GEMM path; the `Auto` thresholds
//!    (`gemm_min_out_channels` / `gemm_min_ckk` / `gemm_min_macs`) become
//!    the smallest values over the GEMM winners, then `gemm_min_macs` is
//!    raised past any loser the relaxed thresholds would misroute.
//! 2. **Cache blocking** ([`BlockProbe`]): a small MC/KC/NC candidate set
//!    is timed on a square 256³ product and a flat im2col-shaped product;
//!    the candidate with the best combined ratio wins.
//! 3. **Parallel threshold**: on a multi-core host, the smallest product
//!    where two workers beat one sets `parallel_min_flops`; on a single
//!    core the driver never fans out, so the default stands.

use super::kernels;
use crate::layer::Layer;
use crate::layers::{Conv2d, KernelPath};
use crate::parallel;
use crate::tensor::Tensor;
use serde::{Deserialize, Serialize};
use std::path::Path;
use std::sync::OnceLock;
use std::time::Instant;

/// Tunable GEMM/dispatch parameters.
///
/// The defaults reproduce the previously hardcoded constants (measured with
/// `examples/conv_probe.rs` on the scalar kernel), except `mc = 72`, which
/// is divisible by both compiled tile heights (4 and 6).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TuneParams {
    /// Rows of A packed per cache block.
    pub mc: usize,
    /// Shared dimension per cache block (also the bitwise-determinism
    /// granularity: per-element accumulation order is k-ascending within
    /// each `kc` block, blocks ascending).
    pub kc: usize,
    /// Columns of B packed per cache block.
    pub nc: usize,
    /// `KernelPath::Auto` lowers a conv to GEMM only when the layer has at
    /// least this many output channels (GEMM rows)…
    pub gemm_min_out_channels: usize,
    /// …and at least this reduction depth `C·K·K` (GEMM k)…
    pub gemm_min_ckk: usize,
    /// …and at least this much total work `OC·CKK·N·OH·OW` (MACs).
    pub gemm_min_macs: usize,
    /// Minimum `m·k·n` before the GEMM driver fans out to multiple workers.
    pub parallel_min_flops: usize,
}

impl Default for TuneParams {
    fn default() -> Self {
        TuneParams {
            mc: 72,
            kc: 256,
            nc: 256,
            gemm_min_out_channels: Conv2d::GEMM_MIN_OUT_CHANNELS,
            gemm_min_ckk: Conv2d::GEMM_MIN_CKK,
            gemm_min_macs: Conv2d::GEMM_MIN_FLOPS,
            parallel_min_flops: 1 << 17,
        }
    }
}

/// One conv-shape measurement in a [`TuneReport`].
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ConvProbe {
    /// Human-readable shape label.
    pub shape: String,
    /// Output channels (GEMM m).
    pub out_channels: usize,
    /// Reduction depth `C·K·K` (GEMM k).
    pub ckk: usize,
    /// Total multiply-accumulates for the probe batch.
    pub macs: usize,
    /// Median direct-path forward time.
    pub direct_ns: f64,
    /// Median im2col+GEMM forward time.
    pub gemm_ns: f64,
}

impl ConvProbe {
    /// Whether the GEMM path won this probe (with a 5% margin, so noise
    /// never promotes a coin-flip shape).
    pub fn gemm_wins(&self) -> bool {
        self.gemm_ns < 0.95 * self.direct_ns
    }
}

/// One cache-block-size measurement in a [`TuneReport`].
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct BlockProbe {
    /// Candidate MC.
    pub mc: usize,
    /// Candidate KC.
    pub kc: usize,
    /// Candidate NC.
    pub nc: usize,
    /// Median 256×256×256 GEMM time.
    pub square_ns: f64,
    /// Median flat (im2col-shaped, 16×54×3200) GEMM time.
    pub flat_ns: f64,
}

/// Everything [`autotune`] measured, serialisable to `results/TUNE_nn.json`.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TuneReport {
    /// Active f32 microkernel at measurement time.
    pub kernel: String,
    /// Active i8 microkernel at measurement time.
    pub i8_kernel: String,
    /// Cores the measuring host exposed.
    pub host_cores: usize,
    /// The derived parameters (what [`install`] should receive).
    pub params: TuneParams,
    /// Per-shape conv crossover measurements.
    pub conv_probes: Vec<ConvProbe>,
    /// Per-candidate block-size measurements.
    pub block_probes: Vec<BlockProbe>,
}

static INSTALLED: OnceLock<TuneParams> = OnceLock::new();

/// The parameters every GEMM/conv dispatch decision reads: the installed
/// tuned set, or the deterministic defaults.
pub fn params() -> TuneParams {
    INSTALLED.get().copied().unwrap_or_default()
}

/// Installs `p` process-wide. Returns `false` if a set was already
/// installed (first install wins — dispatch parameters changing mid-run
/// would silently change f32 accumulation grouping between calls).
///
/// # Panics
///
/// Panics if any block size is zero.
pub fn install(p: TuneParams) -> bool {
    assert!(p.mc > 0 && p.kc > 0 && p.nc > 0, "block sizes must be > 0");
    INSTALLED.set(p).is_ok()
}

/// Median wall time of `f` over `samples` runs of `iters` calls each.
fn median_ns(samples: usize, iters: usize, mut f: impl FnMut()) -> f64 {
    let mut times: Vec<f64> = (0..samples)
        .map(|_| {
            let t0 = Instant::now();
            for _ in 0..iters {
                f();
            }
            t0.elapsed().as_nanos() as f64 / iters as f64
        })
        .collect();
    times.sort_by(f64::total_cmp);
    times[times.len() / 2]
}

fn deterministic_input(shape: &[usize], seed: u64) -> Tensor {
    let len: usize = shape.iter().product();
    let mut x = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let data = (0..len)
        .map(|_| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            ((x >> 40) as f32 / (1u64 << 24) as f32) - 0.5
        })
        .collect();
    Tensor::from_vec(shape, data)
}

/// (label, in_channels, out_channels, kernel, padding, image, batch):
/// the committed bench shapes, the perception detector trunk/head shapes,
/// and one alexnet-mini mid layer.
const CONV_PROBES: &[(&str, usize, usize, usize, usize, usize, usize)] = &[
    ("conv1 1->6 k5 28x28 b32", 1, 6, 5, 0, 28, 32),
    ("conv2 6->16 k3 12x12 b32", 6, 16, 3, 0, 12, 32),
    ("stem 1->4 k3 32x32 b1", 1, 4, 3, 1, 32, 1),
    ("trunk 4->6 k3 32x32 b1", 4, 6, 3, 1, 32, 1),
    ("trunk 6->8 k3 32x32 b1", 6, 8, 3, 1, 32, 1),
    ("head 8->6 k1 32x32 b1", 8, 6, 1, 0, 32, 1),
    ("alex 8->16 k3 16x16 b32", 8, 16, 3, 1, 16, 32),
];

const BLOCK_CANDIDATES: &[(usize, usize, usize)] = &[
    (72, 256, 256),
    (48, 256, 512),
    (96, 320, 192),
    (72, 128, 512),
    (120, 512, 256),
    (64, 256, 256),
];

fn probe_convs() -> Vec<ConvProbe> {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    CONV_PROBES
        .iter()
        .map(|&(label, ic, oc, k, pad, hw, batch)| {
            let mut rng = StdRng::seed_from_u64(38);
            let mut conv = Conv2d::new(ic, oc, k, pad, &mut rng);
            let x = deterministic_input(&[batch, ic, hw, hw], 7 + oc as u64);
            let out = hw + 2 * pad - k + 1;
            let ckk = ic * k * k;
            let macs = oc * ckk * batch * out * out;
            // Scale iteration counts so tiny shapes aren't pure noise and
            // big shapes don't dominate the tuner's runtime.
            let iters = (1 << 22) / macs.max(1 << 18) + 2;
            conv.set_kernel_path(KernelPath::Direct);
            let direct_ns = median_ns(5, iters, || {
                let _ = conv.forward(&x, false);
            });
            conv.set_kernel_path(KernelPath::Gemm);
            let gemm_ns = median_ns(5, iters, || {
                let _ = conv.forward(&x, false);
            });
            ConvProbe {
                shape: label.to_string(),
                out_channels: oc,
                ckk,
                macs,
                direct_ns,
                gemm_ns,
            }
        })
        .collect()
}

/// Derives the three `Auto` thresholds from the probe outcomes: relax each
/// to the smallest value among GEMM winners, then raise the MAC floor past
/// any strict loser the relaxed thresholds would misroute.
fn derive_thresholds(probes: &[ConvProbe], base: &mut TuneParams) {
    let winners: Vec<&ConvProbe> = probes.iter().filter(|p| p.gemm_wins()).collect();
    if winners.is_empty() {
        return;
    }
    base.gemm_min_out_channels = winners.iter().map(|p| p.out_channels).min().unwrap_or(1);
    base.gemm_min_ckk = winners.iter().map(|p| p.ckk).min().unwrap_or(1);
    base.gemm_min_macs = winners.iter().map(|p| p.macs).min().unwrap_or(1);
    for loser in probes.iter().filter(|p| p.gemm_ns >= p.direct_ns) {
        let passes = loser.out_channels >= base.gemm_min_out_channels
            && loser.ckk >= base.gemm_min_ckk
            && loser.macs >= base.gemm_min_macs;
        if passes {
            base.gemm_min_macs = base.gemm_min_macs.max(loser.macs + 1);
        }
    }
}

fn probe_blocks(base: &mut TuneParams) -> Vec<BlockProbe> {
    let sq = deterministic_input(&[256 * 256], 21);
    let sq_b = deterministic_input(&[256 * 256], 22);
    let mut sq_c = vec![0.0f32; 256 * 256];
    let flat = deterministic_input(&[16 * 54], 23);
    let flat_b = deterministic_input(&[54 * 3200], 24);
    let mut flat_c = vec![0.0f32; 16 * 3200];
    let probes: Vec<BlockProbe> = BLOCK_CANDIDATES
        .iter()
        .map(|&(mc, kc, nc)| {
            let candidate = TuneParams {
                mc,
                kc,
                nc,
                ..*base
            };
            let square_ns = median_ns(5, 3, || {
                super::gemm_with_params(
                    256,
                    256,
                    256,
                    sq.as_slice(),
                    sq_b.as_slice(),
                    &mut sq_c,
                    &candidate,
                );
            });
            let flat_ns = median_ns(5, 8, || {
                super::gemm_with_params(
                    16,
                    54,
                    3200,
                    flat.as_slice(),
                    flat_b.as_slice(),
                    &mut flat_c,
                    &candidate,
                );
            });
            BlockProbe {
                mc,
                kc,
                nc,
                square_ns,
                flat_ns,
            }
        })
        .collect();
    let best_sq = probes.iter().map(|p| p.square_ns).fold(f64::MAX, f64::min);
    let best_flat = probes.iter().map(|p| p.flat_ns).fold(f64::MAX, f64::min);
    if let Some(best) = probes.iter().min_by(|a, b| {
        (a.square_ns / best_sq + a.flat_ns / best_flat)
            .total_cmp(&(b.square_ns / best_sq + b.flat_ns / best_flat))
    }) {
        base.mc = best.mc;
        base.kc = best.kc;
        base.nc = best.nc;
    }
    probes
}

fn probe_parallel_threshold(base: &mut TuneParams) {
    if parallel::worker_count() <= 1 {
        // One core: the driver clamps to one worker and never consults the
        // threshold, so keep the portable default for other hosts.
        return;
    }
    let sizes = [64usize, 96, 128, 192, 256];
    for &s in &sizes {
        let a = deterministic_input(&[s * s], 31 + s as u64);
        let b = deterministic_input(&[s * s], 32 + s as u64);
        let mut c = vec![0.0f32; s * s];
        let serial = parallel::with_thread_count(1, || {
            median_ns(3, 3, || {
                super::gemm_with_params(s, s, s, a.as_slice(), b.as_slice(), &mut c, base);
            })
        });
        let fanned = parallel::with_thread_count(2, || {
            median_ns(3, 3, || {
                super::gemm_with_params(s, s, s, a.as_slice(), b.as_slice(), &mut c, base);
            })
        });
        if fanned < 0.9 * serial {
            base.parallel_min_flops = s * s * s;
            return;
        }
    }
    base.parallel_min_flops = usize::MAX;
}

/// Measures conv crossover, cache blocking and the parallel threshold on
/// this host and returns the report. Does **not** install anything — pass
/// `report.params` to [`install`] to activate.
pub fn autotune() -> TuneReport {
    let mut derived = TuneParams::default();
    let conv_probes = probe_convs();
    derive_thresholds(&conv_probes, &mut derived);
    let block_probes = probe_blocks(&mut derived);
    probe_parallel_threshold(&mut derived);
    TuneReport {
        kernel: kernels::active().name.to_string(),
        i8_kernel: kernels::i8_kernel_name().to_string(),
        host_cores: std::thread::available_parallelism().map_or(1, |n| n.get()),
        params: derived,
        conv_probes,
        block_probes,
    }
}

/// Writes `report` to `path` as JSON.
///
/// # Errors
///
/// Returns [`crate::persist::PersistError`] on I/O or serialisation failure.
pub fn save_report(
    report: &TuneReport,
    path: impl AsRef<Path>,
) -> Result<(), crate::persist::PersistError> {
    let file = std::fs::File::create(path)?;
    serde_json::to_writer(std::io::BufWriter::new(file), report)?;
    Ok(())
}

/// Reads a [`TuneReport`] back from `path`.
///
/// # Errors
///
/// Returns [`crate::persist::PersistError`] on I/O or deserialisation
/// failure.
pub fn load_report(path: impl AsRef<Path>) -> Result<TuneReport, crate::persist::PersistError> {
    let file = std::fs::File::open(path)?;
    Ok(serde_json::from_reader(std::io::BufReader::new(file))?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_documented_conv_constants() {
        let d = TuneParams::default();
        assert_eq!(d.gemm_min_out_channels, Conv2d::GEMM_MIN_OUT_CHANNELS);
        assert_eq!(d.gemm_min_ckk, Conv2d::GEMM_MIN_CKK);
        assert_eq!(d.gemm_min_macs, Conv2d::GEMM_MIN_FLOPS);
        assert_eq!(d.mc % 4, 0, "mc must tile the scalar kernel");
        assert_eq!(d.mc % 6, 0, "mc must tile the AVX2 kernel");
    }

    #[test]
    fn threshold_derivation_relaxes_to_winners_and_guards_losers() {
        let probe = |oc: usize, ckk: usize, macs: usize, direct: f64, gemm: f64| ConvProbe {
            shape: format!("oc{oc} ckk{ckk}"),
            out_channels: oc,
            ckk,
            macs,
            direct_ns: direct,
            gemm_ns: gemm,
        };
        let probes = vec![
            probe(6, 25, 500_000, 100.0, 50.0),   // winner: relaxes all three
            probe(16, 54, 2_000_000, 80.0, 20.0), // winner
            probe(8, 36, 800_000, 40.0, 60.0),    // loser that would pass -> macs guard
        ];
        let mut p = TuneParams::default();
        derive_thresholds(&probes, &mut p);
        assert_eq!(p.gemm_min_out_channels, 6);
        assert_eq!(p.gemm_min_ckk, 25);
        assert_eq!(p.gemm_min_macs, 800_001);
    }

    #[test]
    fn no_winners_keeps_defaults() {
        let probes = vec![ConvProbe {
            shape: "s".into(),
            out_channels: 64,
            ckk: 64,
            macs: 1 << 24,
            direct_ns: 10.0,
            gemm_ns: 20.0,
        }];
        let mut p = TuneParams::default();
        derive_thresholds(&probes, &mut p);
        assert_eq!(p, TuneParams::default());
    }

    #[test]
    fn report_serde_round_trip() {
        let report = TuneReport {
            kernel: "scalar-4x8".into(),
            i8_kernel: "scalar-i8-4x16".into(),
            host_cores: 1,
            params: TuneParams::default(),
            conv_probes: vec![ConvProbe {
                shape: "conv1".into(),
                out_channels: 6,
                ckk: 25,
                macs: 1000,
                direct_ns: 1.0,
                gemm_ns: 2.0,
            }],
            block_probes: vec![BlockProbe {
                mc: 72,
                kc: 256,
                nc: 256,
                square_ns: 3.0,
                flat_ns: 4.0,
            }],
        };
        let json = serde_json::to_string(&report).unwrap();
        let back: TuneReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.params, report.params);
        assert_eq!(back.conv_probes.len(), 1);
        assert_eq!(back.block_probes[0].kc, 256);
        assert!(!back.conv_probes[0].gemm_wins());
    }
}
