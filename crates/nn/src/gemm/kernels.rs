//! Register-tile microkernels and runtime kernel dispatch.
//!
//! Two f32 microkernels share one packed-panel contract (`MR`-row k-major A
//! panels, `NR`-column k-major B panels, zero-padded remainders):
//!
//! | kernel           | tile  | requires                | built when |
//! |------------------|-------|-------------------------|------------|
//! | `scalar-4x8`     | 4×8   | nothing (portable)      | always     |
//! | `avx2-fma-6x16`  | 6×16  | AVX2 + FMA (runtime)    | `simd` feature, x86-64, not miri |
//!
//! and two i8×i8→i32 kernels (exact integer arithmetic, so they are
//! interchangeable bit-for-bit):
//!
//! | kernel           | tile  | requires                | built when |
//! |------------------|-------|-------------------------|------------|
//! | `scalar-i8-4x16` | 4×16  | nothing (portable)      | always     |
//! | `avx2-i8-4x16`   | 4×16  | AVX2 (runtime)          | `simd` feature, x86-64, not miri |
//!
//! Selection happens once per call site via [`active`] /
//! [`active_i8_is_simd`]: compiled-in SIMD kernels are used only after
//! `is_x86_feature_detected!` confirms the host supports them, and
//! [`with_scalar_kernel`] (or the `MVML_FORCE_SCALAR` environment variable)
//! pins everything to the portable kernels — used by the bitwise-vs-naive
//! tests, the SIMD-vs-scalar parity suite and CI's forced-scalar lane.
//!
//! ## Determinism
//!
//! Within a tile every output element accumulates strictly k-ascending in
//! both kernels; the AVX2 kernel differs from scalar only by fusing each
//! multiply-add (FMA keeps the infinitely-precise product before the add),
//! so f32 results are deterministic *per kernel* but not bitwise identical
//! *across kernels*. The i8 kernels are exact and therefore bitwise
//! identical to each other.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Largest `MR` any compiled kernel uses (sizes shared tile buffers).
pub const MAX_MR: usize = 8;
/// Largest `NR` any compiled kernel uses.
pub const MAX_NR: usize = 16;
/// Length of the tile scratch buffer every kernel writes into.
pub const MAX_TILE: usize = MAX_MR * MAX_NR;

/// Rows per i8 register tile (same for scalar and AVX2, so the packed
/// layout — and therefore the exact result — is kernel-independent).
pub const QMR: usize = 4;
/// Columns per i8 register tile.
pub const QNR: usize = 16;

/// Which f32 microkernel implementation runs.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[non_exhaustive]
pub enum KernelKind {
    /// Portable 4×8 scalar-unrolled kernel (autovectorized by LLVM).
    Scalar,
    /// 6×16 AVX2+FMA kernel: 12 `ymm` accumulators, 2 loads + 6 broadcasts
    /// + 12 FMAs per k step.
    #[cfg(all(feature = "simd", target_arch = "x86_64", not(miri)))]
    Avx2Fma,
}

/// A selected kernel plus the tile geometry the packing code must honour.
#[derive(Clone, Copy, Debug)]
pub struct KernelInfo {
    /// Which implementation to dispatch to.
    pub kind: KernelKind,
    /// Rows per register tile; A panels are packed `mr`-row k-major.
    pub mr: usize,
    /// Columns per register tile; B panels are packed `nr`-column k-major.
    pub nr: usize,
    /// Stable human-readable name (recorded in `TUNE_nn.json` /
    /// `BENCH_nn.json`).
    pub name: &'static str,
}

const SCALAR: KernelInfo = KernelInfo {
    kind: KernelKind::Scalar,
    mr: 4,
    nr: 8,
    name: "scalar-4x8",
};

#[cfg(all(feature = "simd", target_arch = "x86_64", not(miri)))]
const AVX2_FMA: KernelInfo = KernelInfo {
    kind: KernelKind::Avx2Fma,
    mr: 6,
    nr: 16,
    name: "avx2-fma-6x16",
};

/// Depth of active [`with_scalar_kernel`] scopes (any > 0 forces scalar).
/// A counter rather than a flag so concurrent test threads forcing scalar
/// compose instead of clobbering each other.
static FORCE_SCALAR: AtomicUsize = AtomicUsize::new(0);

fn env_forces_scalar() -> bool {
    static ENV: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *ENV.get_or_init(|| std::env::var("MVML_FORCE_SCALAR").is_ok_and(|v| !v.is_empty() && v != "0"))
}

/// True while the portable kernels are pinned (scope, env var, or a
/// scalar-only build).
pub fn scalar_forced() -> bool {
    env_forces_scalar() || FORCE_SCALAR.load(Ordering::SeqCst) > 0
}

struct ForceGuard;

impl Drop for ForceGuard {
    fn drop(&mut self) {
        FORCE_SCALAR.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Runs `f` with every GEMM pinned to the portable scalar kernels — the
/// in-process equivalent of `MVML_FORCE_SCALAR=1`. Used by tests that
/// compare the SIMD and scalar kernels on identical inputs, and by the
/// bitwise-vs-naive determinism checks (FMA contraction makes the AVX2
/// kernel equal to the naive loop only to tolerance, not bit-for-bit).
///
/// Nesting and concurrent use compose: scalar stays forced until the last
/// scope exits (even across panics).
pub fn with_scalar_kernel<R>(f: impl FnOnce() -> R) -> R {
    FORCE_SCALAR.fetch_add(1, Ordering::SeqCst);
    let _guard = ForceGuard;
    f()
}

#[cfg(all(feature = "simd", target_arch = "x86_64", not(miri)))]
fn avx2_fma_available() -> bool {
    static DETECTED: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *DETECTED.get_or_init(|| {
        std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
    })
}

#[cfg(all(feature = "simd", target_arch = "x86_64", not(miri)))]
fn avx2_available() -> bool {
    static DETECTED: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *DETECTED.get_or_init(|| std::arch::is_x86_feature_detected!("avx2"))
}

/// The f32 microkernel the driver should use right now.
pub fn active() -> KernelInfo {
    #[cfg(all(feature = "simd", target_arch = "x86_64", not(miri)))]
    {
        if !scalar_forced() && avx2_fma_available() {
            return AVX2_FMA;
        }
    }
    SCALAR
}

/// Whether the i8 GEMM dispatches to the AVX2 kernel (the scalar i8 kernel
/// computes bitwise-identical results, so this only affects speed).
pub fn active_i8_is_simd() -> bool {
    #[cfg(all(feature = "simd", target_arch = "x86_64", not(miri)))]
    {
        if !scalar_forced() && avx2_available() {
            return true;
        }
    }
    false
}

/// Stable name of the active i8 kernel.
pub fn i8_kernel_name() -> &'static str {
    if active_i8_is_simd() {
        "avx2-i8-4x16"
    } else {
        "scalar-i8-4x16"
    }
}

/// Runs the selected f32 microkernel: `tile[r*info.nr + c] = Σ_p
/// a_panel[p*info.mr + r] · b_panel[p*info.nr + c]` over `kc` steps.
///
/// Only the first `info.mr` rows (stride `info.nr`) of `tile` are written;
/// callers must read back exactly that region.
pub(crate) fn run(
    info: KernelInfo,
    kc: usize,
    a_panel: &[f32],
    b_panel: &[f32],
    tile: &mut [f32; MAX_TILE],
) {
    match info.kind {
        KernelKind::Scalar => scalar_f32_4x8(kc, a_panel, b_panel, tile),
        #[cfg(all(feature = "simd", target_arch = "x86_64", not(miri)))]
        KernelKind::Avx2Fma => {
            assert!(a_panel.len() >= kc * AVX2_FMA.mr, "A panel too short");
            assert!(b_panel.len() >= kc * AVX2_FMA.nr, "B panel too short");
            // SAFETY: `active()` returns `Avx2Fma` only after
            // `is_x86_feature_detected!` confirmed AVX2 and FMA on this
            // host, satisfying the target-feature contract; the asserts
            // above guarantee the panel reads stay in bounds and the tile
            // is a fixed `MAX_TILE` array larger than the 6×16 store.
            unsafe { avx2::f32_6x16(kc, a_panel, b_panel, tile) }
        }
    }
}

/// Runs the selected i8 microkernel over `steps` packed k-pairs. Both
/// implementations produce identical i32 tiles.
pub(crate) fn run_i8(steps: usize, a_panel: &[i8], b_panel: &[i8], tile: &mut [i32]) {
    debug_assert!(a_panel.len() >= steps * 2 * QMR);
    debug_assert!(b_panel.len() >= steps * 2 * QNR);
    debug_assert!(tile.len() >= QMR * QNR);
    #[cfg(all(feature = "simd", target_arch = "x86_64", not(miri)))]
    {
        if active_i8_is_simd() {
            assert!(a_panel.len() >= steps * 2 * QMR, "i8 A panel too short");
            assert!(b_panel.len() >= steps * 2 * QNR, "i8 B panel too short");
            assert!(tile.len() >= QMR * QNR, "i8 tile too short");
            // SAFETY: `active_i8_is_simd()` is true only after
            // `is_x86_feature_detected!("avx2")` succeeded; the asserts
            // above bound every pointer offset the kernel computes.
            unsafe { avx2::i8_4x16(steps, a_panel, b_panel, tile) };
            return;
        }
    }
    scalar_i8_4x16(steps, a_panel, b_panel, tile);
}

/// Portable 4×8 f32 kernel: fixed-size accumulator arrays + `chunks_exact`
/// keep the tile in registers and let LLVM vectorize the 8-lane loop. The
/// accumulation order (k ascending, multiply then add, no fusing mandated)
/// is the contract the bitwise determinism tests pin down.
fn scalar_f32_4x8(kc: usize, a_panel: &[f32], b_panel: &[f32], tile: &mut [f32; MAX_TILE]) {
    const MR: usize = 4;
    const NR: usize = 8;
    let mut acc = [[0.0f32; NR]; MR];
    for (a, b) in a_panel
        .chunks_exact(MR)
        .zip(b_panel.chunks_exact(NR))
        .take(kc)
    {
        let b: &[f32; NR] = b.try_into().expect("NR chunk");
        for (r, acc_row) in acc.iter_mut().enumerate() {
            let ar = a[r];
            for (slot, &bv) in acc_row.iter_mut().zip(b) {
                *slot += ar * bv;
            }
        }
    }
    for (r, acc_row) in acc.iter().enumerate() {
        tile[r * NR..r * NR + NR].copy_from_slice(acc_row);
    }
}

/// Portable i8 kernel over the pair-interleaved panel layout (see
/// [`crate::gemm::int8`]): per k-pair step, A holds `QMR` row pairs
/// `[a(k0,r), a(k1,r)]` and B holds `QNR` column pairs
/// `[b(k0,c), b(k1,c)]`. All arithmetic widens to i32 immediately, so the
/// result is exact and identical to the AVX2 `madd`-based kernel.
fn scalar_i8_4x16(steps: usize, a_panel: &[i8], b_panel: &[i8], tile: &mut [i32]) {
    let mut acc = [[0i32; QNR]; QMR];
    for (a, b) in a_panel
        .chunks_exact(2 * QMR)
        .zip(b_panel.chunks_exact(2 * QNR))
        .take(steps)
    {
        for (r, acc_row) in acc.iter_mut().enumerate() {
            let a0 = i32::from(a[2 * r]);
            let a1 = i32::from(a[2 * r + 1]);
            for (c, slot) in acc_row.iter_mut().enumerate() {
                *slot += a0 * i32::from(b[2 * c]) + a1 * i32::from(b[2 * c + 1]);
            }
        }
    }
    for (r, acc_row) in acc.iter().enumerate() {
        tile[r * QNR..r * QNR + QNR].copy_from_slice(acc_row);
    }
}

#[cfg(all(feature = "simd", target_arch = "x86_64", not(miri)))]
mod avx2 {
    //! The `std::arch` kernels. Callers uphold: CPU features verified at
    //! runtime, panel slices at least `kc`/`steps` full tile steps long.
    use super::{MAX_TILE, QMR, QNR};
    use std::arch::x86_64::{
        __m256, __m256i, _mm256_add_epi32, _mm256_broadcast_ss, _mm256_castsi256_si128,
        _mm256_cvtepi8_epi16, _mm256_extracti128_si256, _mm256_fmadd_ps, _mm256_loadu_ps,
        _mm256_loadu_si256, _mm256_madd_epi16, _mm256_set1_epi32, _mm256_setzero_ps,
        _mm256_setzero_si256, _mm256_storeu_ps, _mm256_storeu_si256,
    };

    const MR: usize = 6;
    const NR: usize = 16;

    /// 6×16 f32 tile: 12 `ymm` accumulators, per k step two B loads and per
    /// row one broadcast + two FMAs.
    ///
    /// # Safety
    ///
    /// Caller must guarantee AVX2+FMA are available on the running CPU,
    /// `a_panel.len() >= kc * 6` and `b_panel.len() >= kc * 16`.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub(super) unsafe fn f32_6x16(
        kc: usize,
        a_panel: &[f32],
        b_panel: &[f32],
        tile: &mut [f32; MAX_TILE],
    ) {
        let mut acc = [[_mm256_setzero_ps(); 2]; MR];
        let mut ap = a_panel.as_ptr();
        let mut bp = b_panel.as_ptr();
        for _ in 0..kc {
            // SAFETY: caller guarantees `bp` points at ≥ 16 remaining f32s
            // of this k step and `ap` at ≥ 6; all offsets stay within the
            // panel slices.
            unsafe {
                let b0 = _mm256_loadu_ps(bp);
                let b1 = _mm256_loadu_ps(bp.add(8));
                for (r, acc_row) in acc.iter_mut().enumerate() {
                    let av: __m256 = _mm256_broadcast_ss(&*ap.add(r));
                    acc_row[0] = _mm256_fmadd_ps(av, b0, acc_row[0]);
                    acc_row[1] = _mm256_fmadd_ps(av, b1, acc_row[1]);
                }
                ap = ap.add(MR);
                bp = bp.add(NR);
            }
        }
        for (r, acc_row) in acc.iter().enumerate() {
            // SAFETY: `r < 6`, so `r * 16 + 16 <= 96 < MAX_TILE`; the tile
            // array is 16-f32 aligned enough for unaligned stores.
            unsafe {
                _mm256_storeu_ps(tile.as_mut_ptr().add(r * NR), acc_row[0]);
                _mm256_storeu_ps(tile.as_mut_ptr().add(r * NR + 8), acc_row[1]);
            }
        }
    }

    /// 4×16 i8 tile over pair-interleaved panels: one 32-byte B load per k
    /// pair is sign-extended to two i16 vectors; each row's k-pair is
    /// broadcast as a packed `(a0, a1)` i32 and combined with
    /// `_mm256_madd_epi16`, which computes `a0·b0 + a1·b1` per lane in
    /// exact i32 arithmetic (|a·b| ≤ 127² so the pair sum fits i16×i16→i32
    /// with no saturation).
    ///
    /// # Safety
    ///
    /// Caller must guarantee AVX2 is available, `a_panel.len() >= steps *
    /// 8`, `b_panel.len() >= steps * 32`, and `tile.len() >= 64`.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn i8_4x16(steps: usize, a_panel: &[i8], b_panel: &[i8], tile: &mut [i32]) {
        let mut acc = [[_mm256_setzero_si256(); 2]; QMR];
        let mut ap = a_panel.as_ptr();
        let mut bp = b_panel.as_ptr();
        for _ in 0..steps {
            // SAFETY: caller guarantees ≥ 32 bytes remain at `bp` and ≥ 8
            // at `ap` for this step; the unaligned load reads exactly 32.
            unsafe {
                let bq = _mm256_loadu_si256(bp.cast::<__m256i>());
                let b_lo = _mm256_cvtepi8_epi16(_mm256_castsi256_si128(bq));
                let b_hi = _mm256_cvtepi8_epi16(_mm256_extracti128_si256(bq, 1));
                for (r, acc_row) in acc.iter_mut().enumerate() {
                    // Sign-extend each i8 of the row's k-pair to i16 and
                    // pack both little-endian into one broadcast i32, so
                    // every `madd` lane sees (a0, a1) against (b0, b1).
                    let a0 = i32::from(*ap.add(2 * r)) as u32 & 0xFFFF;
                    let a1 = i32::from(*ap.add(2 * r + 1)) as u32 & 0xFFFF;
                    let av = _mm256_set1_epi32(((a1 << 16) | a0) as i32);
                    acc_row[0] = _mm256_add_epi32(acc_row[0], _mm256_madd_epi16(av, b_lo));
                    acc_row[1] = _mm256_add_epi32(acc_row[1], _mm256_madd_epi16(av, b_hi));
                }
                ap = ap.add(2 * QMR);
                bp = bp.add(2 * QNR);
            }
        }
        for (r, acc_row) in acc.iter().enumerate() {
            // SAFETY: `r < 4` and the caller guarantees `tile.len() >= 64`,
            // so `r * 16 + 16 <= 64` i32 stores stay in bounds.
            unsafe {
                _mm256_storeu_si256(tile.as_mut_ptr().add(r * QNR).cast::<__m256i>(), acc_row[0]);
                _mm256_storeu_si256(
                    tile.as_mut_ptr().add(r * QNR + 8).cast::<__m256i>(),
                    acc_row[1],
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_force_scopes_nest_and_restore() {
        let before = active().name;
        with_scalar_kernel(|| {
            assert_eq!(active().name, "scalar-4x8");
            with_scalar_kernel(|| assert_eq!(active().name, "scalar-4x8"));
            assert_eq!(active().name, "scalar-4x8");
        });
        assert_eq!(active().name, before);
    }

    #[test]
    fn i8_kernels_agree_exactly() {
        // Pair-interleaved panels with awkward values incl. extremes.
        let steps = 9;
        let a: Vec<i8> = (0..steps * 2 * QMR)
            .map(|i| ((i * 37 + 11) % 255) as i16 as i8)
            .map(|v| if v == -128 { -127 } else { v })
            .collect();
        let b: Vec<i8> = (0..steps * 2 * QNR)
            .map(|i| ((i * 91 + 3) % 255) as i16 as i8)
            .map(|v| if v == -128 { -127 } else { v })
            .collect();
        let mut scalar_tile = vec![0i32; QMR * QNR];
        scalar_i8_4x16(steps, &a, &b, &mut scalar_tile);
        let mut active_tile = vec![0i32; QMR * QNR];
        run_i8(steps, &a, &b, &mut active_tile);
        assert_eq!(scalar_tile, active_tile);
    }
}
