//! # mvml-nn — a from-scratch neural-network substrate
//!
//! This crate plays the role PyTorch plays in the DSN'25 paper *"Multi-version
//! Machine Learning and Rejuvenation for Resilient Perception in
//! Safety-critical Systems"*: it provides the tensors, layers, losses,
//! optimiser and training loop used to build the diverse ML-module versions
//! of the multi-version architecture, plus a synthetic stand-in for the
//! GTSRB traffic-sign dataset ([`signs`]).
//!
//! Everything is pure, dependency-light Rust: dense `f32` tensors, direct
//! convolution loops, hand-written backward passes verified against
//! numerical gradients in the test suite.
//!
//! ## Example
//!
//! Train a small classifier on synthetic signs and measure its accuracy:
//!
//! ```
//! use mvml_nn::models::lenet_mini;
//! use mvml_nn::signs::{generate, SignConfig};
//! use mvml_nn::train::{train_classifier, TrainConfig};
//! use mvml_nn::metrics::evaluate_accuracy;
//!
//! let cfg = SignConfig { classes: 5, noise_std: 0.05, ..SignConfig::default() };
//! let train = generate(&cfg, 200, 0);
//! let test = generate(&cfg, 60, 1);
//! let mut model = lenet_mini(cfg.image_size, cfg.classes, 38);
//! let tc = TrainConfig { epochs: 3, batch_size: 32, ..TrainConfig::default() };
//! let report = train_classifier(&mut model, &train, &tc);
//! assert_eq!(report.epoch_losses.len(), 3);
//! let _accuracy = evaluate_accuracy(&mut model, &test, 32);
//! ```

// The only `unsafe` in the crate is the `std::arch` microkernels in
// `gemm::kernels` (gated behind the `simd` feature and runtime CPU feature
// detection); every block carries a `// SAFETY:` justification, enforced by
// the workspace `undocumented_unsafe_blocks = deny` lint. Scalar-only builds
// (`--no-default-features`) re-establish the crate-wide forbid.
#![cfg_attr(not(feature = "simd"), forbid(unsafe_code))]
#![cfg_attr(feature = "simd", deny(unsafe_op_in_unsafe_fn))]
#![warn(missing_docs)]
// The substrate's expect/panic sites are documented layer contracts
// (`backward before forward`, shape preconditions) and thread-join
// invariants, mirrored by shape asserts; converting them to typed errors
// would thread Results through every hot training loop for no caller
// that could recover. Kept as documented panics instead.
#![allow(clippy::unwrap_used, clippy::expect_used)]

pub mod data;
pub mod gemm;
pub mod init;
pub mod layer;
pub mod layers;
pub mod loss;
pub mod metrics;
pub mod model;
pub mod models;
pub mod optim;
pub mod parallel;
pub mod persist;
pub mod quant;
pub mod signs;
pub mod tensor;
pub mod train;

pub use data::Dataset;
pub use layer::{Layer, Param};
pub use model::{ModelState, Sequential};
pub use parallel::{parse_positive_env, EnvParseError, EnvParseErrorKind};
pub use tensor::Tensor;
