//! Weight persistence: the "safe memory location" rejuvenation reloads from.
//!
//! The paper's rejuvenation mechanism "reloads and redeploys an ML module
//! from a safe memory location". [`save_state`]/[`load_state`] provide that
//! location on disk: a JSON-serialised [`ModelState`] that can be restored
//! into an identically-shaped model.

use crate::model::{ModelState, Sequential};
use crate::quant::{QuantizedModel, QuantizedState};
use std::fmt;
use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::path::Path;

/// Errors from weight persistence.
#[derive(Debug)]
#[non_exhaustive]
pub enum PersistError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// Serialisation / deserialisation failure.
    Serde(serde_json::Error),
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "weight file I/O failed: {e}"),
            PersistError::Serde(e) => write!(f, "weight (de)serialisation failed: {e}"),
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Io(e) => Some(e),
            PersistError::Serde(e) => Some(e),
        }
    }
}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

impl From<serde_json::Error> for PersistError {
    fn from(e: serde_json::Error) -> Self {
        PersistError::Serde(e)
    }
}

/// Snapshots `model`'s weights and writes them to `path` as JSON.
///
/// # Errors
///
/// Returns [`PersistError`] on I/O or serialisation failure.
pub fn save_state(model: &mut Sequential, path: impl AsRef<Path>) -> Result<(), PersistError> {
    let state = model.snapshot();
    let file = File::create(path)?;
    serde_json::to_writer(BufWriter::new(file), &state)?;
    Ok(())
}

/// Reads a [`ModelState`] from `path`.
///
/// # Errors
///
/// Returns [`PersistError`] on I/O or deserialisation failure.
pub fn load_state(path: impl AsRef<Path>) -> Result<ModelState, PersistError> {
    let file = File::open(path)?;
    Ok(serde_json::from_reader(BufReader::new(file))?)
}

/// Loads weights from `path` into `model` (which must be architecturally
/// identical to the model that saved them).
///
/// # Errors
///
/// Returns [`PersistError`] on I/O or deserialisation failure.
///
/// # Panics
///
/// Panics if the stored state does not match `model`'s structure (the same
/// contract as [`Sequential::restore`]).
pub fn load_into(model: &mut Sequential, path: impl AsRef<Path>) -> Result<(), PersistError> {
    let state = load_state(path)?;
    model.restore(&state);
    Ok(())
}

/// Writes a quantized model's int8 weights to `path` as JSON — the
/// quantized counterpart of [`save_state`] (a quantized version's "safe
/// memory location" for rejuvenation: inference-only models are restored
/// wholesale, not re-trained).
///
/// # Errors
///
/// Returns [`PersistError`] on I/O or serialisation failure.
pub fn save_quantized(model: &QuantizedModel, path: impl AsRef<Path>) -> Result<(), PersistError> {
    let state = model.state();
    let file = File::create(path)?;
    serde_json::to_writer(BufWriter::new(file), &state)?;
    Ok(())
}

/// Reads a [`QuantizedModel`] back from `path`.
///
/// # Errors
///
/// Returns [`PersistError`] on I/O or deserialisation failure.
pub fn load_quantized(path: impl AsRef<Path>) -> Result<QuantizedModel, PersistError> {
    let file = File::open(path)?;
    let state: QuantizedState = serde_json::from_reader(BufReader::new(file))?;
    Ok(QuantizedModel::from_state(state))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::Layer;
    use crate::models::lenet_mini;
    use crate::Tensor;

    fn temp_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("mvml-persist-{}-{name}.json", std::process::id()));
        p
    }

    #[test]
    fn save_load_round_trip() {
        let path = temp_path("round-trip");
        let mut m = lenet_mini(16, 10, 42);
        let x = Tensor::from_vec(&[1, 1, 16, 16], vec![0.3; 256]);
        let before = m.forward(&x, false);

        save_state(&mut m, &path).unwrap();
        // wreck the weights, then reload
        for p in m.all_params() {
            p.values.fill(0.0);
        }
        assert_ne!(m.forward(&x, false).as_slice(), before.as_slice());
        load_into(&mut m, &path).unwrap();
        assert_eq!(m.forward(&x, false).as_slice(), before.as_slice());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn quantized_save_load_round_trip() {
        let path = temp_path("quantized");
        let f32_model = lenet_mini(16, 10, 7);
        let mut q = crate::quant::quantize_model(&f32_model).unwrap();
        let x = Tensor::from_vec(&[1, 1, 16, 16], vec![0.25; 256]);
        let before = q.forward(&x, false);

        save_quantized(&q, &path).unwrap();
        let mut loaded = load_quantized(&path).unwrap();
        assert_eq!(loaded.model_name(), q.model_name());
        assert_eq!(loaded.state(), q.state());
        assert_eq!(loaded.forward(&x, false).as_slice(), before.as_slice());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_missing_file_is_io_error() {
        let err = load_state("/definitely/not/here.json").unwrap_err();
        assert!(matches!(err, PersistError::Io(_)));
        assert!(err.to_string().contains("I/O"));
        assert!(std::error::Error::source(&err).is_some());
    }

    #[test]
    fn corrupt_file_is_serde_error() {
        let path = temp_path("corrupt");
        std::fs::write(&path, b"this is not json").unwrap();
        let err = load_state(&path).unwrap_err();
        assert!(matches!(err, PersistError::Serde(_)));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    #[should_panic(expected = "layer count mismatch")]
    fn mismatched_architecture_panics_on_restore() {
        let path = temp_path("mismatch");
        let mut a = lenet_mini(16, 10, 0);
        save_state(&mut a, &path).unwrap();
        let mut b = crate::models::resmlp(16, 10, 0);
        let result = load_into(&mut b, &path);
        std::fs::remove_file(&path).ok();
        result.unwrap();
    }
}
