//! The three diverse classifier architectures used as ML-module versions.
//!
//! The paper trains AlexNet, LeNet and ResNet50 on GTSRB; this reproduction
//! uses three architecturally diverse small networks in the same roles:
//!
//! * [`lenet_mini`] — the classic conv→pool→conv→pool→dense stack (LeNet).
//! * [`alexnet_mini`] — a wider, padded three-conv stack (AlexNet's role).
//! * [`resmlp`] — a dense network with residual blocks (ResNet's role).
//!
//! Diversity in depth, receptive field and parameterisation produces the
//! partially-overlapping error sets the paper's α calibration relies on.

use crate::layers::{Conv2d, Dense, Flatten, MaxPool2, Relu, Residual};
use crate::model::Sequential;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Builds the LeNet-style CNN.
///
/// # Panics
///
/// Panics if `image_size` is too small for the conv/pool stack (minimum 12).
pub fn lenet_mini(image_size: usize, classes: usize, seed: u64) -> Sequential {
    assert!(image_size >= 12, "lenet_mini needs image_size >= 12");
    let mut rng = StdRng::seed_from_u64(seed);
    let s1 = image_size - 4; // conv 5, valid
    let s2 = s1 / 2; // pool
    let s3 = s2 - 2; // conv 3, valid
    let s4 = s3 / 2; // pool
    assert!(s4 >= 1, "image too small after the conv stack");
    let flat = 16 * s4 * s4;
    let mut m = Sequential::new("lenet-mini");
    m.push(Conv2d::new(1, 6, 5, 0, &mut rng));
    m.push(Relu::new());
    m.push(MaxPool2::new());
    m.push(Conv2d::new(6, 16, 3, 0, &mut rng));
    m.push(Relu::new());
    m.push(MaxPool2::new());
    m.push(Flatten::new());
    m.push(Dense::new(flat, 64, &mut rng));
    m.push(Relu::new());
    m.push(Dense::new(64, classes, &mut rng));
    m
}

/// Builds the AlexNet-style (wider, padded) CNN.
///
/// # Panics
///
/// Panics if `image_size` is smaller than 8.
pub fn alexnet_mini(image_size: usize, classes: usize, seed: u64) -> Sequential {
    assert!(image_size >= 8, "alexnet_mini needs image_size >= 8");
    let mut rng = StdRng::seed_from_u64(seed);
    let s1 = image_size / 2; // pad-same conv then pool
    let s2 = s1 / 2;
    let flat = 24 * s2 * s2;
    let mut m = Sequential::new("alexnet-mini");
    m.push(Conv2d::new(1, 8, 3, 1, &mut rng));
    m.push(Relu::new());
    m.push(MaxPool2::new());
    m.push(Conv2d::new(8, 16, 3, 1, &mut rng));
    m.push(Relu::new());
    m.push(MaxPool2::new());
    m.push(Conv2d::new(16, 24, 3, 1, &mut rng));
    m.push(Relu::new());
    m.push(Flatten::new());
    m.push(Dense::new(flat, 96, &mut rng));
    m.push(Relu::new());
    m.push(Dense::new(96, classes, &mut rng));
    m
}

/// Builds the residual dense network (ResNet's role).
pub fn resmlp(image_size: usize, classes: usize, seed: u64) -> Sequential {
    let mut rng = StdRng::seed_from_u64(seed);
    let inputs = image_size * image_size;
    let width = 128;
    let mut m = Sequential::new("resmlp");
    m.push(Flatten::new());
    m.push(Dense::new(inputs, width, &mut rng));
    m.push(Relu::new());
    let mut block1 = Sequential::new("block1");
    block1.push(Dense::new(width, width, &mut rng));
    block1.push(Relu::new());
    block1.push(Dense::new(width, width, &mut rng));
    m.push(Residual::new(block1));
    m.push(Relu::new());
    m.push(Dense::new(width, classes, &mut rng));
    m
}

/// Builds all three versions with distinct seeds, in the paper's order
/// (AlexNet, ResNet, LeNet → here alexnet_mini, resmlp, lenet_mini).
pub fn three_versions(image_size: usize, classes: usize, base_seed: u64) -> Vec<Sequential> {
    vec![
        alexnet_mini(image_size, classes, base_seed),
        resmlp(image_size, classes, base_seed + 1),
        lenet_mini(image_size, classes, base_seed + 2),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::Layer;
    use crate::tensor::Tensor;

    #[test]
    fn all_models_produce_class_logits() {
        for mut m in three_versions(16, 43, 0) {
            let x = Tensor::zeros(&[2, 1, 16, 16]);
            let y = m.forward(&x, false);
            assert_eq!(y.shape(), &[2, 43], "{}", m.model_name());
        }
    }

    #[test]
    fn models_are_architecturally_diverse() {
        let ms = three_versions(16, 43, 0);
        let param_counts: Vec<usize> = ms.iter().map(|m| m.param_len()).collect();
        assert_ne!(param_counts[0], param_counts[1]);
        assert_ne!(param_counts[1], param_counts[2]);
        let macs: Vec<u64> = ms.iter().map(|m| m.macs(&[1, 1, 16, 16])).collect();
        assert!(macs.iter().all(|&c| c > 10_000));
    }

    #[test]
    fn gradients_flow_through_every_model() {
        for mut m in three_versions(16, 10, 1) {
            let x = Tensor::from_vec(&[1, 1, 16, 16], vec![0.5; 256]);
            let y = m.forward(&x, true);
            let g = Tensor::from_vec(y.shape(), vec![1.0; y.len()]);
            let gx = m.backward(&g);
            assert_eq!(gx.shape(), x.shape());
            let has_grad = m
                .all_params()
                .iter()
                .any(|p| p.grads.iter().any(|&v| v != 0.0));
            assert!(has_grad, "{} produced no gradients", m.model_name());
        }
    }

    #[test]
    fn seeds_differentiate_weights() {
        let mut a = lenet_mini(16, 10, 0);
        let mut b = lenet_mini(16, 10, 1);
        let wa: Vec<f32> = a.all_params()[0].values.to_vec();
        let wb: Vec<f32> = b.all_params()[0].values.to_vec();
        assert_ne!(wa, wb);
    }

    #[test]
    fn lenet_flat_dimension_consistency() {
        // forward on various sizes to ensure the computed flat size matches
        for size in [12usize, 16, 20] {
            let mut m = lenet_mini(size, 5, 0);
            let x = Tensor::zeros(&[1, 1, size, size]);
            let y = m.forward(&x, false);
            assert_eq!(y.shape(), &[1, 5]);
        }
    }
}
