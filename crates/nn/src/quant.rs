//! Post-training int8 quantization for inference.
//!
//! The scheme is deliberately simple and fully deterministic:
//!
//! - **Weights**: per-layer symmetric calibration. One scale per layer,
//!   `scale = max|w| / 127`, `q = round(w / scale)` clamped to `[-127, 127]`
//!   (−128 is never produced, keeping the i8×i8 product inside 14 bits).
//! - **Activations**: dynamic per-tensor symmetric quantization at each
//!   quantized layer's input; activations stay f32 *between* layers, so
//!   ReLU/pooling/flatten run unchanged and no calibration dataset is
//!   needed.
//! - **Accumulation**: exact i32 via [`crate::gemm::gemm_i8`], then one
//!   f32 rescale `acc · (w_scale · a_scale) + bias`. Biases stay f32.
//!
//! [`quantize_model`] converts a trained [`Sequential`] whose layers are
//! `Conv2d`/`Dense` (via [`crate::layer::Layer::as_any`] downcasts) plus the
//! stateless `relu`/`maxpool2`/`flatten` layers; anything else (e.g.
//! `Residual`, `sigmoid`) is rejected with [`QuantError::Unsupported`] — the
//! caller keeps the f32 version for such models, which is exactly the
//! multi-version spirit: the quantized model is an additional *diverse
//! version*, not a replacement. [`QuantizedModel`] implements [`Layer`]
//! (inference-only — `backward` panics), so [`QuantizedModel::into_module`]
//! yields a [`Sequential`] that slots into the hardened N-version pipeline
//! anywhere a trained f32 model does.

use crate::gemm;
use crate::layer::{Layer, Param};
use crate::model::Sequential;
use crate::tensor::Tensor;
use serde::{Deserialize, Serialize};

/// Why a model could not be quantized.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QuantError {
    /// The model contains a layer kind the quantizer does not support.
    Unsupported(&'static str),
}

impl std::fmt::Display for QuantError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QuantError::Unsupported(kind) => {
                write!(f, "cannot quantize layer kind {kind:?}")
            }
        }
    }
}

impl std::error::Error for QuantError {}

/// The symmetric scale mapping `values` onto `[-127, 127]`:
/// `max|v| / 127`, or `1.0` for an all-zero slice (any scale represents
/// zeros exactly).
pub fn symmetric_scale(values: &[f32]) -> f32 {
    let max_abs = values.iter().fold(0.0f32, |m, v| m.max(v.abs()));
    if max_abs > 0.0 {
        max_abs / 127.0
    } else {
        1.0
    }
}

/// Quantizes `values` with the given symmetric scale: `round(v / scale)`
/// clamped to `[-127, 127]` (ties round away from zero, deterministically).
pub fn quantize(values: &[f32], scale: f32) -> Vec<i8> {
    values
        .iter()
        .map(|&v| (v / scale).round().clamp(-127.0, 127.0) as i8)
        .collect()
}

/// Maps quantized values back to f32: `q · scale`.
pub fn dequantize(values: &[i8], scale: f32) -> Vec<f32> {
    values.iter().map(|&q| f32::from(q) * scale).collect()
}

/// Reusable per-model inference scratch (quantized input, lowered patch
/// matrix, i32 accumulator). Lives outside the serialized state — a loaded
/// model starts with empty scratch and grows it on first use.
#[derive(Debug, Clone, Default)]
struct QScratch {
    xq: Vec<i8>,
    col_q: Vec<i8>,
    acc: Vec<i32>,
}

fn grown<T: Copy>(buf: &mut Vec<T>, len: usize, fill: T) -> &mut [T] {
    buf.clear();
    buf.resize(len, fill);
    &mut buf[..]
}

/// Int8 convolution: the quantized counterpart of
/// [`crate::layers::Conv2d`] (stride 1, symmetric zero padding), weights
/// pre-lowered to the `[OC, C·K·K]` im2col layout.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QConv2d {
    in_channels: usize,
    out_channels: usize,
    kernel: usize,
    padding: usize,
    /// `[OC, C·K·K]` row-major — identical element order to the f32
    /// `[OC, IC, K, K]` tensor, so lowering is a straight quantize.
    weight: Vec<i8>,
    weight_scale: f32,
    bias: Vec<f32>,
}

impl QConv2d {
    fn from_f32(conv: &crate::layers::Conv2d) -> Self {
        let scale = symmetric_scale(conv.weight().as_slice());
        QConv2d {
            in_channels: conv.in_channels(),
            out_channels: conv.out_channels(),
            kernel: conv.kernel_size(),
            padding: conv.padding(),
            weight: quantize(conv.weight().as_slice(), scale),
            weight_scale: scale,
            bias: conv.bias().as_slice().to_vec(),
        }
    }

    /// The layer's weight scale (tests inspect calibration).
    pub fn weight_scale(&self) -> f32 {
        self.weight_scale
    }

    fn out_hw(&self, h: usize, w: usize) -> (usize, usize) {
        (
            h + 2 * self.padding - self.kernel + 1,
            w + 2 * self.padding - self.kernel + 1,
        )
    }

    /// Quantize + pad + im2col in i8, one exact integer GEMM, one f32
    /// rescale. Quantizing the (small) padded input and lowering *bytes* is
    /// cheaper than lowering f32 and quantizing the (K·K× larger) patch
    /// matrix — and gives the identical result, since im2col only copies.
    fn forward(&self, x: &Tensor, scratch: &mut QScratch) -> Tensor {
        let [n, c, h, w]: [usize; 4] = x.shape().try_into().expect("qconv expects [N,C,H,W]");
        assert_eq!(c, self.in_channels, "qconv channel mismatch");
        let (k, p) = (self.kernel, self.padding);
        let (oh, ow) = self.out_hw(h, w);
        assert!(oh > 0 && ow > 0, "qconv output collapsed to zero size");
        let (ph, pw) = (h + 2 * p, w + 2 * p);
        let (ckk, ohow) = (c * k * k, oh * ow);
        let cols = n * ohow;

        let a_scale = symmetric_scale(x.as_slice());
        let inv = 1.0 / a_scale;
        // Quantized padded input (zero padding is exact in i8).
        let xpad_q = grown(&mut scratch.xq, n * c * ph * pw, 0i8);
        let xs = x.as_slice();
        for plane in 0..n * c {
            for y in 0..h {
                let src = plane * h * w + y * w;
                let dst = plane * ph * pw + (y + p) * pw + p;
                for (o, &v) in xpad_q[dst..dst + w].iter_mut().zip(&xs[src..src + w]) {
                    *o = (v * inv).round().clamp(-127.0, 127.0) as i8;
                }
            }
        }
        // Byte im2col, same index math as the f32 path.
        let col_q = grown(&mut scratch.col_q, ckk * cols, 0i8);
        for img in 0..n {
            for ic in 0..c {
                let x_base = (img * c + ic) * ph * pw;
                for ky in 0..k {
                    for kx in 0..k {
                        let r = (ic * k + ky) * k + kx;
                        for oy in 0..oh {
                            let src = x_base + (oy + ky) * pw + kx;
                            let dst = r * cols + img * ohow + oy * ow;
                            col_q[dst..dst + ow].copy_from_slice(&xpad_q[src..src + ow]);
                        }
                    }
                }
            }
        }
        let acc = grown(&mut scratch.acc, self.out_channels * cols, 0i32);
        gemm::gemm_i8(self.out_channels, ckk, cols, &self.weight, col_q, acc);
        let rescale = self.weight_scale * a_scale;
        let mut out = Tensor::zeros(&[n, self.out_channels, oh, ow]);
        let os = out.as_mut_slice();
        for img in 0..n {
            for (oc, &bias) in self.bias.iter().enumerate() {
                let src = &acc[oc * cols + img * ohow..][..ohow];
                let dst = &mut os[(img * self.out_channels + oc) * ohow..][..ohow];
                for (o, &v) in dst.iter_mut().zip(src) {
                    *o = v as f32 * rescale + bias;
                }
            }
        }
        out
    }
}

/// Int8 fully-connected layer: the quantized counterpart of
/// [`crate::layers::Dense`], weight kept in the same `[in, out]` layout.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QDense {
    in_features: usize,
    out_features: usize,
    /// `[in, out]` row-major i8.
    weight: Vec<i8>,
    weight_scale: f32,
    bias: Vec<f32>,
}

impl QDense {
    fn from_f32(dense: &crate::layers::Dense) -> Self {
        let scale = symmetric_scale(dense.weight().as_slice());
        QDense {
            in_features: dense.in_features(),
            out_features: dense.out_features(),
            weight: quantize(dense.weight().as_slice(), scale),
            weight_scale: scale,
            bias: dense.bias().as_slice().to_vec(),
        }
    }

    /// The layer's weight scale (tests inspect calibration).
    pub fn weight_scale(&self) -> f32 {
        self.weight_scale
    }

    fn forward(&self, x: &Tensor, scratch: &mut QScratch) -> Tensor {
        assert_eq!(x.shape().len(), 2, "qdense expects [N, features]");
        assert_eq!(x.shape()[1], self.in_features, "qdense width mismatch");
        let n = x.shape()[0];
        let a_scale = symmetric_scale(x.as_slice());
        let inv = 1.0 / a_scale;
        let xq = grown(&mut scratch.xq, n * self.in_features, 0i8);
        for (q, &v) in xq.iter_mut().zip(x.as_slice()) {
            *q = (v * inv).round().clamp(-127.0, 127.0) as i8;
        }
        let acc = grown(&mut scratch.acc, n * self.out_features, 0i32);
        gemm::gemm_i8(
            n,
            self.in_features,
            self.out_features,
            xq,
            &self.weight,
            acc,
        );
        let rescale = self.weight_scale * a_scale;
        let mut y = Tensor::zeros(&[n, self.out_features]);
        let ys = y.as_mut_slice();
        for i in 0..n {
            for j in 0..self.out_features {
                ys[i * self.out_features + j] =
                    acc[i * self.out_features + j] as f32 * rescale + self.bias[j];
            }
        }
        y
    }
}

/// One layer of a quantized model. Parametric layers carry int8 weights;
/// the stateless layers are re-implemented on f32 activations (bitwise
/// identical to their f32 counterparts — they only compare, select and
/// copy).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum QLayer {
    /// Int8 convolution.
    Conv(QConv2d),
    /// Int8 affine layer.
    Dense(QDense),
    /// `max(0, x)`.
    Relu,
    /// 2×2 stride-2 max pooling, floor semantics.
    MaxPool2,
    /// `[N, ...] → [N, prod]` reshape.
    Flatten,
}

impl QLayer {
    fn forward(&self, x: &Tensor, scratch: &mut QScratch) -> Tensor {
        match self {
            QLayer::Conv(conv) => conv.forward(x, scratch),
            QLayer::Dense(dense) => dense.forward(x, scratch),
            QLayer::Relu => {
                let mut y = x.clone();
                for v in y.as_mut_slice() {
                    if *v < 0.0 {
                        *v = 0.0;
                    }
                }
                y
            }
            QLayer::MaxPool2 => {
                let [n, c, h, w]: [usize; 4] =
                    x.shape().try_into().expect("maxpool expects [N,C,H,W]");
                let (oh, ow) = (h / 2, w / 2);
                assert!(oh > 0 && ow > 0, "maxpool input too small");
                let xs = x.as_slice();
                let mut out = Tensor::zeros(&[n, c, oh, ow]);
                let os = out.as_mut_slice();
                for plane in 0..n * c {
                    let base = plane * h * w;
                    for oy in 0..oh {
                        for ox in 0..ow {
                            let i = base + (2 * oy) * w + 2 * ox;
                            let best = xs[i].max(xs[i + 1]).max(xs[i + w]).max(xs[i + w + 1]);
                            os[(plane * oh + oy) * ow + ox] = best;
                        }
                    }
                }
                out
            }
            QLayer::Flatten => {
                let n = x.shape()[0];
                x.reshape(&[n, x.len() / n])
            }
        }
    }

    fn output_shape(&self, input: &[usize]) -> Vec<usize> {
        match self {
            QLayer::Conv(c) => {
                let (oh, ow) = c.out_hw(input[2], input[3]);
                vec![input[0], c.out_channels, oh, ow]
            }
            QLayer::Dense(d) => vec![input[0], d.out_features],
            QLayer::Relu => input.to_vec(),
            QLayer::MaxPool2 => vec![input[0], input[1], input[2] / 2, input[3] / 2],
            QLayer::Flatten => vec![input[0], input[1..].iter().product()],
        }
    }

    fn macs(&self, input: &[usize]) -> u64 {
        match self {
            QLayer::Conv(c) => {
                let (oh, ow) = c.out_hw(input[2], input[3]);
                (input[0] * c.out_channels * oh * ow * c.in_channels * c.kernel * c.kernel) as u64
            }
            QLayer::Dense(d) => (input[0] * d.in_features * d.out_features) as u64,
            QLayer::Flatten => 0,
            // Same element-count convention as the f32 Relu/MaxPool2 layers,
            // so quantized and f32 versions report identical compute cost.
            QLayer::Relu | QLayer::MaxPool2 => input.iter().product::<usize>() as u64,
        }
    }
}

/// The serialisable part of a [`QuantizedModel`] (everything except
/// inference scratch); what [`crate::persist::save_quantized`] writes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantizedState {
    /// Model name (`"<f32 name>-int8"`).
    pub name: String,
    /// Layer stack, in forward order.
    pub layers: Vec<QLayer>,
}

/// An inference-only int8 model produced by [`quantize_model`].
///
/// Implements [`Layer`] so it can be wrapped ([`QuantizedModel::into_module`])
/// into a [`Sequential`] and used as a version in the N-version pipeline;
/// `backward` panics and `params` is empty (fault injection into a quantized
/// version's weights is not modelled — rejuvenation reloads it wholesale).
#[derive(Debug, Clone)]
pub struct QuantizedModel {
    name: String,
    layers: Vec<QLayer>,
    scratch: QScratch,
}

impl QuantizedModel {
    /// The model's name (`"<f32 name>-int8"`).
    pub fn model_name(&self) -> &str {
        &self.name
    }

    /// The layer stack.
    pub fn layers(&self) -> &[QLayer] {
        &self.layers
    }

    /// Snapshot of the serialisable state.
    pub fn state(&self) -> QuantizedState {
        QuantizedState {
            name: self.name.clone(),
            layers: self.layers.clone(),
        }
    }

    /// Rebuilds a model from persisted state (fresh scratch).
    pub fn from_state(state: QuantizedState) -> Self {
        QuantizedModel {
            name: state.name,
            layers: state.layers,
            scratch: QScratch::default(),
        }
    }

    /// Wraps the model into a single-layer [`Sequential`] carrying the same
    /// name, so it drops into every API that takes a trained f32 model.
    pub fn into_module(self) -> Sequential {
        let mut m = Sequential::new(self.name.clone());
        m.push(self);
        m
    }
}

impl Layer for QuantizedModel {
    fn name(&self) -> &'static str {
        "quantized"
    }

    fn forward(&mut self, x: &Tensor, _train: bool) -> Tensor {
        let mut cur = x.clone();
        let scratch = &mut self.scratch;
        for layer in &self.layers {
            cur = layer.forward(&cur, scratch);
        }
        cur
    }

    fn backward(&mut self, _grad_out: &Tensor) -> Tensor {
        panic!("quantized models are inference-only; train the f32 model and re-quantize");
    }

    fn params(&mut self) -> Vec<Param<'_>> {
        Vec::new()
    }

    fn output_shape(&self, input: &[usize]) -> Vec<usize> {
        let mut shape = input.to_vec();
        for layer in &self.layers {
            shape = layer.output_shape(&shape);
        }
        shape
    }

    fn macs(&self, input: &[usize]) -> u64 {
        let mut shape = input.to_vec();
        let mut total = 0u64;
        for layer in &self.layers {
            total += layer.macs(&shape);
            shape = layer.output_shape(&shape);
        }
        total
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

/// Converts a trained f32 [`Sequential`] into an int8 [`QuantizedModel`]
/// with per-layer symmetric weight calibration.
///
/// # Errors
///
/// Returns [`QuantError::Unsupported`] if the model contains any layer other
/// than `Conv2d`, `Dense`, `relu`, `maxpool2` or `flatten` (e.g. `Residual`
/// blocks or `sigmoid` activations).
pub fn quantize_model(model: &Sequential) -> Result<QuantizedModel, QuantError> {
    let mut layers = Vec::with_capacity(model.layer_count());
    for i in 0..model.layer_count() {
        let layer = model.layer(i);
        if let Some(any) = layer.as_any() {
            if let Some(conv) = any.downcast_ref::<crate::layers::Conv2d>() {
                layers.push(QLayer::Conv(QConv2d::from_f32(conv)));
                continue;
            }
            if let Some(dense) = any.downcast_ref::<crate::layers::Dense>() {
                layers.push(QLayer::Dense(QDense::from_f32(dense)));
                continue;
            }
        }
        match layer.name() {
            "relu" => layers.push(QLayer::Relu),
            "maxpool2" => layers.push(QLayer::MaxPool2),
            "flatten" => layers.push(QLayer::Flatten),
            other => return Err(QuantError::Unsupported(other)),
        }
    }
    Ok(QuantizedModel {
        name: format!("{}-int8", model.model_name()),
        layers,
        scratch: QScratch::default(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models;

    fn arb(len: usize, seed: u64) -> Vec<f32> {
        let mut x = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        (0..len)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                ((x >> 40) as f32 / (1u64 << 24) as f32) - 0.5
            })
            .collect()
    }

    #[test]
    fn round_trip_error_is_bounded_by_half_scale() {
        let values = arb(1000, 42);
        let scale = symmetric_scale(&values);
        let back = dequantize(&quantize(&values, scale), scale);
        for (&v, &r) in values.iter().zip(&back) {
            assert!(
                (v - r).abs() <= scale * 0.5 + 1e-7,
                "{v} -> {r} exceeds half-scale {scale}"
            );
        }
    }

    #[test]
    fn all_zero_slice_gets_unit_scale() {
        assert!((symmetric_scale(&[0.0; 8]) - 1.0).abs() < f32::EPSILON);
        assert_eq!(quantize(&[0.0; 4], 1.0), vec![0i8; 4]);
    }

    #[test]
    fn extremes_map_to_plus_minus_127() {
        let values = [-2.0f32, 0.0, 2.0];
        let scale = symmetric_scale(&values);
        assert_eq!(quantize(&values, scale), vec![-127, 0, 127]);
    }

    #[test]
    fn quantized_lenet_tracks_f32_outputs() {
        let mut f32_model = models::lenet_mini(28, 10, 6);
        let mut q = quantize_model(&f32_model).expect("lenet_mini is quantizable");
        assert_eq!(q.model_name(), "lenet-mini-int8");
        let x = Tensor::from_vec(&[2, 1, 28, 28], arb(2 * 28 * 28, 9));
        let yf = f32_model.forward(&x, false);
        let yq = q.forward(&x, false);
        assert_eq!(yf.shape(), yq.shape());
        // Untrained He-normal logits are O(1); int8 keeps them close.
        let max_abs = yf.as_slice().iter().fold(0.0f32, |m, v| m.max(v.abs()));
        for (f, qv) in yf.as_slice().iter().zip(yq.as_slice()) {
            assert!(
                (f - qv).abs() <= 0.15 * max_abs.max(1.0),
                "f32 {f} vs int8 {qv} (max_abs {max_abs})"
            );
        }
    }

    #[test]
    fn shapes_and_macs_match_f32_model() {
        let f32_model = models::lenet_mini(28, 10, 1);
        let q = quantize_model(&f32_model).expect("quantizable");
        let input = [4usize, 1, 28, 28];
        assert_eq!(q.output_shape(&input), f32_model.output_shape(&input));
        assert_eq!(q.macs(&input), f32_model.macs(&input));
    }

    #[test]
    fn residual_models_are_rejected() {
        let err = quantize_model(&models::resmlp(16, 10, 0)).unwrap_err();
        assert!(matches!(err, QuantError::Unsupported(_)));
    }

    #[test]
    fn into_module_predicts_like_the_raw_quantized_model() {
        let f32_model = models::alexnet_mini(32, 10, 3);
        let q = quantize_model(&f32_model).expect("alexnet_mini is quantizable");
        let mut direct = q.clone();
        let mut module = q.into_module();
        assert_eq!(module.model_name(), "alexnet-mini-int8");
        let x = Tensor::from_vec(&[3, 1, 32, 32], arb(3 * 32 * 32, 5));
        assert_eq!(module.predict(&x), {
            let y = direct.forward(&x, false);
            let k = *y.shape().last().unwrap();
            y.as_slice()
                .chunks(k)
                .map(|row| {
                    row.iter()
                        .enumerate()
                        .max_by(|a, b| a.1.total_cmp(b.1))
                        .map(|(i, _)| i)
                        .unwrap()
                })
                .collect::<Vec<_>>()
        });
        // Inference-only: no parameters to inject faults into.
        assert_eq!(module.param_len(), 0);
        assert!(module.parametric_layers().is_empty());
    }

    #[test]
    fn state_round_trip_preserves_outputs() {
        let f32_model = models::lenet_mini(28, 10, 2);
        let mut q = quantize_model(&f32_model).expect("quantizable");
        let mut restored = QuantizedModel::from_state(q.state());
        let x = Tensor::from_vec(&[1, 1, 28, 28], arb(28 * 28, 3));
        let a = q.forward(&x, false);
        let b = restored.forward(&x, false);
        assert_eq!(a.as_slice(), b.as_slice());
    }

    #[test]
    #[should_panic(expected = "inference-only")]
    fn backward_panics() {
        let f32_model = models::lenet_mini(28, 10, 4);
        let mut q = quantize_model(&f32_model).expect("quantizable");
        let x = Tensor::from_vec(&[1, 1, 28, 28], arb(28 * 28, 7));
        let _ = q.forward(&x, true);
        let _ = q.backward(&Tensor::zeros(&[1, 10]));
    }
}
