//! Weight initialisation helpers.

use rand::rngs::StdRng;
use rand::Rng;

/// Samples a standard normal variate via the Box–Muller transform.
pub fn standard_normal(rng: &mut StdRng) -> f32 {
    let u1: f64 = loop {
        let u: f64 = rng.random();
        if u > f64::EPSILON {
            break u;
        }
    };
    let u2: f64 = rng.random();
    ((-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()) as f32
}

/// He-normal initialisation: `N(0, sqrt(2 / fan_in))`, the standard choice
/// before ReLU activations.
pub fn he_normal(rng: &mut StdRng, fan_in: usize, n: usize) -> Vec<f32> {
    let std = (2.0 / fan_in as f64).sqrt() as f32;
    (0..n).map(|_| standard_normal(rng) * std).collect()
}

/// Xavier-uniform initialisation: `U(-a, a)` with `a = sqrt(6/(fan_in+fan_out))`.
pub fn xavier_uniform(rng: &mut StdRng, fan_in: usize, fan_out: usize, n: usize) -> Vec<f32> {
    let a = (6.0 / (fan_in + fan_out) as f64).sqrt();
    (0..n)
        .map(|_| (rng.random::<f64>() * 2.0 * a - a) as f32)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn normal_moments_roughly_standard() {
        let mut rng = StdRng::seed_from_u64(1);
        let xs: Vec<f32> = (0..20_000).map(|_| standard_normal(&mut rng)).collect();
        let mean: f32 = xs.iter().sum::<f32>() / xs.len() as f32;
        let var: f32 = xs.iter().map(|x| (x - mean).powi(2)).sum::<f32>() / xs.len() as f32;
        assert!(mean.abs() < 0.03, "mean={mean}");
        assert!((var - 1.0).abs() < 0.05, "var={var}");
    }

    #[test]
    fn he_normal_scales_with_fan_in() {
        let mut rng = StdRng::seed_from_u64(2);
        let xs = he_normal(&mut rng, 200, 20_000);
        let var: f32 = xs.iter().map(|x| x * x).sum::<f32>() / xs.len() as f32;
        assert!((var - 0.01).abs() < 0.002, "var={var}");
    }

    #[test]
    fn xavier_uniform_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        let a = (6.0f32 / 300.0).sqrt();
        let xs = xavier_uniform(&mut rng, 100, 200, 10_000);
        assert!(xs.iter().all(|x| x.abs() <= a + 1e-6));
        assert!(xs.iter().any(|x| x.abs() > a * 0.5));
    }

    #[test]
    fn deterministic_per_seed() {
        let a = he_normal(&mut StdRng::seed_from_u64(7), 10, 32);
        let b = he_normal(&mut StdRng::seed_from_u64(7), 10, 32);
        assert_eq!(a, b);
    }
}
