//! Loss functions with fused gradients.

use crate::tensor::Tensor;

/// Softmax cross-entropy over logits.
///
/// `logits` is `[N, K]`, `labels` holds `N` class indices. Returns the mean
/// loss and the gradient w.r.t. the logits (already divided by `N`).
///
/// # Panics
///
/// Panics if shapes disagree or a label is out of range.
pub fn softmax_cross_entropy(logits: &Tensor, labels: &[usize]) -> (f32, Tensor) {
    assert_eq!(logits.shape().len(), 2, "logits must be [N, K]");
    let (n, k) = (logits.shape()[0], logits.shape()[1]);
    assert_eq!(n, labels.len(), "batch size mismatch");
    let mut grad = Tensor::zeros(&[n, k]);
    let gs = grad.as_mut_slice();
    let xs = logits.as_slice();
    let mut loss = 0.0f64;
    for i in 0..n {
        let row = &xs[i * k..(i + 1) * k];
        let label = labels[i];
        assert!(label < k, "label {label} out of range for {k} classes");
        let max = row.iter().fold(f32::NEG_INFINITY, |m, &v| m.max(v));
        let mut denom = 0.0f32;
        for &v in row {
            denom += (v - max).exp();
        }
        let log_denom = denom.ln();
        loss += f64::from(log_denom - (row[label] - max));
        for j in 0..k {
            let softmax = (row[j] - max).exp() / denom;
            gs[i * k + j] = (softmax - if j == label { 1.0 } else { 0.0 }) / n as f32;
        }
    }
    ((loss / n as f64) as f32, grad)
}

/// Probabilities (softmax) for a `[N, K]` logit tensor.
pub fn softmax(logits: &Tensor) -> Tensor {
    let (n, k) = (logits.shape()[0], logits.shape()[1]);
    let mut out = Tensor::zeros(&[n, k]);
    let os = out.as_mut_slice();
    let xs = logits.as_slice();
    for i in 0..n {
        let row = &xs[i * k..(i + 1) * k];
        let max = row.iter().fold(f32::NEG_INFINITY, |m, &v| m.max(v));
        let mut denom = 0.0f32;
        for &v in row {
            denom += (v - max).exp();
        }
        for j in 0..k {
            os[i * k + j] = (row[j] - max).exp() / denom;
        }
    }
    out
}

/// Binary cross-entropy on logits with a numerically stable formulation.
///
/// `logits` and `targets` have identical shapes; targets are in `[0, 1]`.
/// Returns the mean loss and gradient w.r.t. the logits. Used to train the
/// BEV objectness head of the YOLO-substitute detector.
///
/// # Panics
///
/// Panics on shape mismatch.
pub fn bce_with_logits(logits: &Tensor, targets: &Tensor) -> (f32, Tensor) {
    bce_with_logits_weighted(logits, targets, 1.0)
}

/// Binary cross-entropy on logits with a positive-class weight, matching
/// PyTorch's `BCEWithLogitsLoss(pos_weight=…)`. Positive targets contribute
/// `pos_weight ×` their usual loss/gradient — essential when positives are
/// rare, as for occupied BEV cells (< 1% of the grid), where unweighted BCE
/// collapses to the all-negative predictor.
///
/// # Panics
///
/// Panics on shape mismatch or non-positive `pos_weight`.
pub fn bce_with_logits_weighted(
    logits: &Tensor,
    targets: &Tensor,
    pos_weight: f32,
) -> (f32, Tensor) {
    assert_eq!(logits.shape(), targets.shape(), "bce shape mismatch");
    assert!(pos_weight > 0.0, "pos_weight must be positive");
    let n = logits.len() as f32;
    let mut grad = Tensor::zeros(logits.shape());
    let gs = grad.as_mut_slice();
    let mut loss = 0.0f64;
    for (i, (&x, &t)) in logits.as_slice().iter().zip(targets.as_slice()).enumerate() {
        // Numerically stable log-sigmoids:
        //   ln σ(x)     = min(x, 0) − ln(1 + e^{−|x|})
        //   ln(1−σ(x))  = min(−x, 0) − ln(1 + e^{−|x|})
        let log1p = (1.0 + (-x.abs()).exp()).ln();
        let log_sigma = x.min(0.0) - log1p;
        let log_one_minus = (-x).min(0.0) - log1p;
        let l = -pos_weight * t * log_sigma - (1.0 - t) * log_one_minus;
        loss += f64::from(l);
        let sigma = 1.0 / (1.0 + (-x).exp());
        gs[i] = (sigma * (1.0 - t) - pos_weight * t * (1.0 - sigma)) / n;
    }
    ((loss / f64::from(n)) as f32, grad)
}

#[cfg(test)]
// Exact float assertions are deliberate here: the expected values are
// produced by the same deterministic arithmetic being tested.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    #[test]
    fn cross_entropy_of_perfect_prediction_is_small() {
        let logits = Tensor::from_vec(&[1, 3], vec![10.0, -10.0, -10.0]);
        let (loss, _) = softmax_cross_entropy(&logits, &[0]);
        assert!(loss < 1e-6);
    }

    #[test]
    fn cross_entropy_uniform_is_ln_k() {
        let logits = Tensor::zeros(&[2, 4]);
        let (loss, _) = softmax_cross_entropy(&logits, &[1, 3]);
        assert!((loss - (4.0f32).ln()).abs() < 1e-6);
    }

    #[test]
    fn cross_entropy_gradient_matches_numeric() {
        let logits = Tensor::from_vec(&[1, 3], vec![0.3, -0.1, 0.7]);
        let (_, grad) = softmax_cross_entropy(&logits, &[2]);
        let eps = 1e-3f32;
        for j in 0..3 {
            let mut lp = logits.clone();
            lp.as_mut_slice()[j] += eps;
            let (loss_p, _) = softmax_cross_entropy(&lp, &[2]);
            let mut lm = logits.clone();
            lm.as_mut_slice()[j] -= eps;
            let (loss_m, _) = softmax_cross_entropy(&lm, &[2]);
            let numeric = (loss_p - loss_m) / (2.0 * eps);
            assert!(
                (numeric - grad.as_slice()[j]).abs() < 1e-3,
                "j={j}: {numeric} vs {}",
                grad.as_slice()[j]
            );
        }
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let logits = Tensor::from_vec(&[2, 3], vec![1., 2., 3., -1., 0., 1.]);
        let p = softmax(&logits);
        for row in p.as_slice().chunks(3) {
            let s: f32 = row.iter().sum();
            assert!((s - 1.0).abs() < 1e-6);
            assert!(row.iter().all(|&v| v > 0.0));
        }
    }

    #[test]
    fn softmax_is_shift_invariant_and_stable() {
        let a = softmax(&Tensor::from_vec(&[1, 2], vec![1.0, 2.0]));
        let b = softmax(&Tensor::from_vec(&[1, 2], vec![1001.0, 1002.0]));
        for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
            assert!((x - y).abs() < 1e-6);
            assert!(x.is_finite());
        }
    }

    #[test]
    fn bce_gradient_matches_numeric() {
        let logits = Tensor::from_vec(&[4], vec![0.5, -1.5, 2.0, 0.0]);
        let targets = Tensor::from_vec(&[4], vec![1.0, 0.0, 0.5, 1.0]);
        let (_, grad) = bce_with_logits(&logits, &targets);
        let eps = 1e-3f32;
        for j in 0..4 {
            let mut lp = logits.clone();
            lp.as_mut_slice()[j] += eps;
            let (loss_p, _) = bce_with_logits(&lp, &targets);
            let mut lm = logits.clone();
            lm.as_mut_slice()[j] -= eps;
            let (loss_m, _) = bce_with_logits(&lm, &targets);
            let numeric = (loss_p - loss_m) / (2.0 * eps);
            assert!((numeric - grad.as_slice()[j]).abs() < 1e-3);
        }
    }

    #[test]
    fn bce_is_stable_for_large_logits() {
        let logits = Tensor::from_vec(&[2], vec![100.0, -100.0]);
        let targets = Tensor::from_vec(&[2], vec![1.0, 0.0]);
        let (loss, grad) = bce_with_logits(&logits, &targets);
        assert!(loss.is_finite() && loss < 1e-6);
        assert!(grad.as_slice().iter().all(|g| g.is_finite()));
    }

    #[test]
    fn weighted_bce_gradient_matches_numeric() {
        let logits = Tensor::from_vec(&[3], vec![0.4, -0.9, 1.5]);
        let targets = Tensor::from_vec(&[3], vec![1.0, 0.0, 1.0]);
        let w = 25.0;
        let (_, grad) = bce_with_logits_weighted(&logits, &targets, w);
        let eps = 1e-3f32;
        for j in 0..3 {
            let mut lp = logits.clone();
            lp.as_mut_slice()[j] += eps;
            let (loss_p, _) = bce_with_logits_weighted(&lp, &targets, w);
            let mut lm = logits.clone();
            lm.as_mut_slice()[j] -= eps;
            let (loss_m, _) = bce_with_logits_weighted(&lm, &targets, w);
            let numeric = (loss_p - loss_m) / (2.0 * eps);
            assert!(
                (numeric - grad.as_slice()[j]).abs() < 2e-2,
                "j={j}: {numeric} vs {}",
                grad.as_slice()[j]
            );
        }
    }

    #[test]
    fn weighted_bce_amplifies_positive_gradient() {
        let logits = Tensor::from_vec(&[1], vec![0.0]);
        let targets = Tensor::from_vec(&[1], vec![1.0]);
        let (_, g1) = bce_with_logits_weighted(&logits, &targets, 1.0);
        let (_, g10) = bce_with_logits_weighted(&logits, &targets, 10.0);
        assert!((g10.as_slice()[0] / g1.as_slice()[0] - 10.0).abs() < 1e-4);
        // negative targets are unaffected by pos_weight
        let neg = Tensor::from_vec(&[1], vec![0.0]);
        let (_, n1) = bce_with_logits_weighted(&logits, &neg, 1.0);
        let (_, n10) = bce_with_logits_weighted(&logits, &neg, 10.0);
        assert_eq!(n1.as_slice()[0], n10.as_slice()[0]);
    }

    #[test]
    fn weighted_bce_is_finite_for_extreme_logits() {
        let logits = Tensor::from_vec(&[2], vec![500.0, -500.0]);
        let targets = Tensor::from_vec(&[2], vec![0.0, 1.0]);
        let (loss, grad) = bce_with_logits_weighted(&logits, &targets, 40.0);
        assert!(loss.is_finite());
        assert!(grad.as_slice().iter().all(|g| g.is_finite()));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn cross_entropy_rejects_bad_label() {
        let logits = Tensor::zeros(&[1, 3]);
        let _ = softmax_cross_entropy(&logits, &[3]);
    }
}
