//! Cache-blocked, register-tiled matrix multiplication with runtime kernel
//! dispatch.
//!
//! The driver follows the classic BLIS decomposition: operands are cut into
//! `MC`×`KC` / `KC`×`NC` cache blocks ([`tune::TuneParams`]), each block is
//! repacked into `MR`-row / `NR`-column k-major panels, and a register-tile
//! microkernel accumulates each `MR`×`NR` tile. The microkernel is selected
//! once per call from [`kernels`]: an AVX2+FMA 6×16 kernel when the `simd`
//! feature is compiled in **and** runtime detection confirms the host
//! supports it, a portable scalar-unrolled 4×8 kernel otherwise (or when
//! pinned via [`kernels::with_scalar_kernel`] / `MVML_FORCE_SCALAR`).
//!
//! Three orientations cover every product the layers need without ever
//! materializing a transpose:
//!
//! - [`gemm`]: `C = A·B` (forward passes)
//! - [`gemm_tn`]: `C = Aᵀ·B` (weight-space gradients, `Wᵀ·dY`)
//! - [`gemm_nt`] / [`gemm_nt_acc`]: `C (+)= A·Bᵀ` (input-space gradients,
//!   `dY·colᵀ` accumulation)
//!
//! Quantized inference uses the exact [`int8::gemm_i8`] product, and
//! [`tune`] derives the cache-block sizes and `Auto`-path thresholds from
//! measurement instead of guesses.
//!
//! ## Parallelism
//!
//! Products above [`tune::TuneParams::parallel_min_flops`] fan out across
//! [`parallel::worker_count`] workers (clamped to physical cores — spawning
//! more only adds overhead). **B is packed exactly once**, serially, into a
//! shared read-only block-major buffer; each worker then owns a disjoint
//! row range of `C` and a private A-panel scratch, so there is no shared
//! mutable packing buffer to contend on and no redundant per-worker B
//! packing (the cause of the old flat/negative thread scaling).
//!
//! ## Determinism
//!
//! Every output element is accumulated in exactly the same order — `k`
//! ascending within each `KC` block, blocks ascending — no matter how many
//! threads run the kernel: workers partition the **rows of C** into
//! disjoint ranges, so threading changes which worker computes an element,
//! never the floating-point order within it. `MVML_THREADS=1` and
//! `MVML_THREADS=64` produce bitwise-identical results (asserted in this
//! module's tests). Results *do* depend on which microkernel is selected
//! (FMA fuses each multiply-add) and on the installed `KC` — both fixed per
//! process, so any single host+build+environment is bitwise reproducible.

use crate::parallel;

pub mod int8;
pub mod kernels;
pub mod tune;

pub use int8::gemm_i8;
pub use kernels::with_scalar_kernel;

use kernels::{KernelInfo, MAX_TILE};
use tune::TuneParams;

/// A borrowed row-major matrix, optionally accessed transposed.
///
/// `Mat::normal(data, r, c)` views `data` as `r`×`c`; `Mat::transposed`
/// views the same storage as its transpose without moving any element.
#[derive(Clone, Copy)]
struct Mat<'a> {
    data: &'a [f32],
    /// Row stride of the *stored* layout.
    stride: usize,
    transposed: bool,
}

impl<'a> Mat<'a> {
    fn normal(data: &'a [f32], rows: usize, cols: usize) -> Self {
        debug_assert_eq!(data.len(), rows * cols);
        Mat {
            data,
            stride: cols,
            transposed: false,
        }
    }

    fn transposed(data: &'a [f32], stored_rows: usize, stored_cols: usize) -> Self {
        debug_assert_eq!(data.len(), stored_rows * stored_cols);
        Mat {
            data,
            stride: stored_cols,
            transposed: true,
        }
    }

    #[inline]
    fn get(&self, i: usize, j: usize) -> f32 {
        if self.transposed {
            self.data[j * self.stride + i]
        } else {
            self.data[i * self.stride + j]
        }
    }
}

/// `C = A·B` with `A: [m, k]`, `B: [k, n]`, `C: [m, n]`, all row-major.
///
/// # Panics
///
/// Panics if a slice length disagrees with its dimensions.
pub fn gemm(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    assert_eq!(a.len(), m * k, "A must be {m}x{k}");
    assert_eq!(b.len(), k * n, "B must be {k}x{n}");
    assert_eq!(c.len(), m * n, "C must be {m}x{n}");
    let tp = tune::params();
    driver(
        m,
        k,
        n,
        Mat::normal(a, m, k),
        Mat::normal(b, k, n),
        c,
        false,
        &tp,
    );
}

/// `C = Aᵀ·B` with `A` **stored** `[k, m]`, `B: [k, n]`, `C: [m, n]`.
///
/// Computes the same result as `A.transpose().matmul(B)` without building
/// the transpose.
///
/// # Panics
///
/// Panics if a slice length disagrees with its dimensions.
pub fn gemm_tn(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    assert_eq!(a.len(), k * m, "A must be stored {k}x{m}");
    assert_eq!(b.len(), k * n, "B must be {k}x{n}");
    assert_eq!(c.len(), m * n, "C must be {m}x{n}");
    let tp = tune::params();
    driver(
        m,
        k,
        n,
        Mat::transposed(a, k, m),
        Mat::normal(b, k, n),
        c,
        false,
        &tp,
    );
}

/// `C += Aᵀ·B` — the accumulating variant of [`gemm_tn`], used to sum
/// weight gradients across backward calls without a scratch matrix.
///
/// # Panics
///
/// Panics if a slice length disagrees with its dimensions.
pub fn gemm_tn_acc(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    assert_eq!(a.len(), k * m, "A must be stored {k}x{m}");
    assert_eq!(b.len(), k * n, "B must be {k}x{n}");
    assert_eq!(c.len(), m * n, "C must be {m}x{n}");
    let tp = tune::params();
    driver(
        m,
        k,
        n,
        Mat::transposed(a, k, m),
        Mat::normal(b, k, n),
        c,
        true,
        &tp,
    );
}

/// `C = A·Bᵀ` with `A: [m, k]`, `B` **stored** `[n, k]`, `C: [m, n]`.
///
/// # Panics
///
/// Panics if a slice length disagrees with its dimensions.
pub fn gemm_nt(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    assert_eq!(a.len(), m * k, "A must be {m}x{k}");
    assert_eq!(b.len(), n * k, "B must be stored {n}x{k}");
    assert_eq!(c.len(), m * n, "C must be {m}x{n}");
    let tp = tune::params();
    driver(
        m,
        k,
        n,
        Mat::normal(a, m, k),
        Mat::transposed(b, n, k),
        c,
        false,
        &tp,
    );
}

/// `C += A·Bᵀ` — the accumulating variant of [`gemm_nt`], used to sum
/// per-image weight gradients without a scratch matrix per image.
///
/// # Panics
///
/// Panics if a slice length disagrees with its dimensions.
pub fn gemm_nt_acc(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    assert_eq!(a.len(), m * k, "A must be {m}x{k}");
    assert_eq!(b.len(), n * k, "B must be stored {n}x{k}");
    assert_eq!(c.len(), m * n, "C must be {m}x{n}");
    let tp = tune::params();
    driver(
        m,
        k,
        n,
        Mat::normal(a, m, k),
        Mat::transposed(b, n, k),
        c,
        true,
        &tp,
    );
}

/// [`gemm`] with explicit [`TuneParams`] — the autotuner's measurement
/// entry point (candidate block sizes must not require installing anything
/// process-wide).
pub(crate) fn gemm_with_params(
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    tp: &TuneParams,
) {
    assert_eq!(a.len(), m * k, "A must be {m}x{k}");
    assert_eq!(b.len(), k * n, "B must be {k}x{n}");
    assert_eq!(c.len(), m * n, "C must be {m}x{n}");
    driver(
        m,
        k,
        n,
        Mat::normal(a, m, k),
        Mat::normal(b, k, n),
        c,
        false,
        tp,
    );
}

/// Picks the worker count and dispatches: serial below the tuned work
/// threshold, otherwise partitioned across [`parallel::worker_count`]
/// workers.
#[allow(clippy::too_many_arguments)]
fn driver(
    m: usize,
    k: usize,
    n: usize,
    a: Mat<'_>,
    b: Mat<'_>,
    c: &mut [f32],
    accumulate: bool,
    tp: &TuneParams,
) {
    if m == 0 || n == 0 {
        return;
    }
    if k == 0 {
        if !accumulate {
            c.fill(0.0);
        }
        return;
    }
    let workers = if m.saturating_mul(k).saturating_mul(n) < tp.parallel_min_flops {
        1
    } else {
        parallel::worker_count().min(m)
    };
    run_partitioned(workers, m, k, n, a, b, c, accumulate, tp);
}

/// Runs the blocked kernel with an explicit worker count (the driver picks
/// it; tests call this directly to exercise the partitioned path on any
/// host). With more than one worker, B is packed once into a shared
/// read-only buffer and each worker computes a disjoint row range of `C`
/// with private A-panel scratch.
#[allow(clippy::too_many_arguments)]
fn run_partitioned(
    workers: usize,
    m: usize,
    k: usize,
    n: usize,
    a: Mat<'_>,
    b: Mat<'_>,
    c: &mut [f32],
    accumulate: bool,
    tp: &TuneParams,
) {
    let kern = kernels::active();
    if workers <= 1 {
        let mut scratch = PackScratch::new(kern, tp);
        block_panel(
            m,
            k,
            n,
            0,
            a,
            BSource::Mat(b),
            c,
            accumulate,
            kern,
            tp,
            &mut scratch,
        );
        return;
    }
    let packed = PackedB::build(b, k, n, kern, tp);
    // Round row chunks up to MR so tile boundaries stay aligned and no
    // worker gets an empty range.
    let rows_per = m.div_ceil(workers).div_ceil(kern.mr) * kern.mr;
    crossbeam::thread::scope(|scope| {
        for (chunk_idx, c_rows) in c.chunks_mut(rows_per * n).enumerate() {
            let row0 = chunk_idx * rows_per;
            let rows = c_rows.len() / n;
            let packed = &packed;
            scope.spawn(move |_| {
                let mut scratch = PackScratch::new(kern, tp);
                block_panel(
                    rows,
                    k,
                    n,
                    row0,
                    a,
                    BSource::Packed(packed),
                    c_rows,
                    accumulate,
                    kern,
                    tp,
                    &mut scratch,
                );
            });
        }
    })
    .expect("gemm worker panicked");
}

/// Where a worker's B panels come from: packed on the fly into private
/// scratch (serial path), or read from the shared pre-packed buffer
/// (parallel path).
#[derive(Clone, Copy)]
enum BSource<'a> {
    Mat(Mat<'a>),
    Packed(&'a PackedB),
}

/// Per-worker packing scratch, sized once per call for the tuned block
/// geometry (no shared mutable buffers between workers).
struct PackScratch {
    a_pack: Vec<f32>,
    b_pack: Vec<f32>,
}

impl PackScratch {
    fn new(kern: KernelInfo, tp: &TuneParams) -> Self {
        PackScratch {
            a_pack: vec![0.0; tp.mc.div_ceil(kern.mr) * kern.mr * tp.kc],
            b_pack: vec![0.0; tp.nc.div_ceil(kern.nr) * kern.nr * tp.kc],
        }
    }
}

/// All of B packed once, block-major: block `(jc_idx, pc_idx)` holds the
/// `NR`-column panels of `B[pc.., jc..]` at a fixed stride, so workers can
/// index any block without coordination.
struct PackedB {
    data: Vec<f32>,
    block_len: usize,
    pc_blocks: usize,
}

impl PackedB {
    fn build(b: Mat<'_>, k: usize, n: usize, kern: KernelInfo, tp: &TuneParams) -> Self {
        let jc_blocks = n.div_ceil(tp.nc);
        let pc_blocks = k.div_ceil(tp.kc);
        let block_len = tp.nc.div_ceil(kern.nr) * kern.nr * tp.kc;
        let mut data = vec![0.0f32; jc_blocks * pc_blocks * block_len];
        for jb in 0..jc_blocks {
            let jc = jb * tp.nc;
            let nc = tp.nc.min(n - jc);
            for pb in 0..pc_blocks {
                let pc = pb * tp.kc;
                let kc = tp.kc.min(k - pc);
                let off = (jb * pc_blocks + pb) * block_len;
                pack_b(
                    &mut data[off..off + block_len],
                    b,
                    pc,
                    kc,
                    jc,
                    nc,
                    kern.nr,
                    tp.kc,
                );
            }
        }
        PackedB {
            data,
            block_len,
            pc_blocks,
        }
    }

    fn block(&self, jb: usize, pb: usize) -> &[f32] {
        &self.data[(jb * self.pc_blocks + pb) * self.block_len..][..self.block_len]
    }
}

/// Blocked kernel over a row range: computes `C[row0..row0+rows, :]` into
/// `c` (a `rows`×`n` slice). Accumulation order per element is fixed: `KC`
/// blocks ascending, `k` ascending within each block.
#[allow(clippy::too_many_arguments)]
fn block_panel(
    rows: usize,
    k: usize,
    n: usize,
    row0: usize,
    a: Mat<'_>,
    b: BSource<'_>,
    c: &mut [f32],
    accumulate: bool,
    kern: KernelInfo,
    tp: &TuneParams,
    scratch: &mut PackScratch,
) {
    if !accumulate {
        c.fill(0.0);
    }
    let PackScratch { a_pack, b_pack } = scratch;
    for (jb, jc) in (0..n).step_by(tp.nc).enumerate() {
        let nc = tp.nc.min(n - jc);
        for (pb, pc) in (0..k).step_by(tp.kc).enumerate() {
            let kc = tp.kc.min(k - pc);
            let b_panels: &[f32] = match b {
                BSource::Mat(bm) => {
                    pack_b(b_pack, bm, pc, kc, jc, nc, kern.nr, tp.kc);
                    b_pack
                }
                BSource::Packed(p) => p.block(jb, pb),
            };
            for ic in (0..rows).step_by(tp.mc) {
                let mc = tp.mc.min(rows - ic);
                pack_a(a_pack, a, row0 + ic, mc, pc, kc, kern.mr, tp.kc);
                multiply_block(a_pack, b_panels, c, ic, mc, jc, nc, kc, n, kern, tp.kc);
            }
        }
    }
}

/// Packs `A[row0..row0+mc, pc..pc+kc]` into `mr`-row panels, each panel
/// stored k-major (`panel[p*mr + r]`) at stride `mr * kc_cap`, zero-padding
/// the row remainder so the microkernel never branches. When `A` is a
/// stored transpose, each full panel slot is a contiguous run of the stored
/// layout and packs with `copy_from_slice` instead of scalar gathers.
#[allow(clippy::too_many_arguments)]
fn pack_a(
    pack: &mut [f32],
    a: Mat<'_>,
    row0: usize,
    mc: usize,
    pc: usize,
    kc: usize,
    mr: usize,
    kc_cap: usize,
) {
    for (panel_idx, panel) in pack
        .chunks_mut(mr * kc_cap)
        .enumerate()
        .take(mc.div_ceil(mr))
    {
        let r0 = panel_idx * mr;
        let live = mr.min(mc - r0);
        if a.transposed && live == mr {
            for (p, slot) in panel.chunks_exact_mut(mr).enumerate().take(kc) {
                let src = &a.data[(pc + p) * a.stride + row0 + r0..][..mr];
                slot.copy_from_slice(src);
            }
        } else {
            for (p, slot) in panel.chunks_exact_mut(mr).enumerate().take(kc) {
                for (r, out) in slot.iter_mut().enumerate() {
                    *out = if r < live {
                        a.get(row0 + r0 + r, pc + p)
                    } else {
                        0.0
                    };
                }
            }
        }
    }
}

/// Packs `B[pc..pc+kc, jc..jc+nc]` into `nr`-column panels, each panel
/// stored k-major (`panel[p*nr + c]`) at stride `nr * kc_cap`, zero-padding
/// the column remainder. For row-major `B` each full panel slot is a
/// contiguous row run, so the common case is a straight `copy_from_slice` —
/// packing cost matters for flat operands like im2col matrices where `k` is
/// small.
#[allow(clippy::too_many_arguments)]
fn pack_b(
    pack: &mut [f32],
    b: Mat<'_>,
    pc: usize,
    kc: usize,
    jc: usize,
    nc: usize,
    nr: usize,
    kc_cap: usize,
) {
    for (panel_idx, panel) in pack
        .chunks_mut(nr * kc_cap)
        .enumerate()
        .take(nc.div_ceil(nr))
    {
        let c0 = panel_idx * nr;
        let live = nr.min(nc - c0);
        if !b.transposed && live == nr {
            for (p, slot) in panel.chunks_exact_mut(nr).enumerate().take(kc) {
                let src = &b.data[(pc + p) * b.stride + jc + c0..][..nr];
                slot.copy_from_slice(src);
            }
        } else {
            for (p, slot) in panel.chunks_exact_mut(nr).enumerate().take(kc) {
                for (cc, out) in slot.iter_mut().enumerate() {
                    *out = if cc < live {
                        b.get(pc + p, jc + c0 + cc)
                    } else {
                        0.0
                    };
                }
            }
        }
    }
}

/// Multiplies one packed `mc`×`kc` A block against one packed `kc`×`nc` B
/// block, adding into `C[ic.., jc..]` (`ldc = n`) via the selected
/// microkernel.
#[allow(clippy::too_many_arguments)]
fn multiply_block(
    a_pack: &[f32],
    b_pack: &[f32],
    c: &mut [f32],
    ic: usize,
    mc: usize,
    jc: usize,
    nc: usize,
    kc: usize,
    n: usize,
    kern: KernelInfo,
    kc_cap: usize,
) {
    let mut tile = [0.0f32; MAX_TILE];
    for (a_idx, a_panel) in a_pack
        .chunks(kern.mr * kc_cap)
        .enumerate()
        .take(mc.div_ceil(kern.mr))
    {
        let r0 = a_idx * kern.mr;
        let live_rows = kern.mr.min(mc - r0);
        for (b_idx, b_panel) in b_pack
            .chunks(kern.nr * kc_cap)
            .enumerate()
            .take(nc.div_ceil(kern.nr))
        {
            let c0 = b_idx * kern.nr;
            let live_cols = kern.nr.min(nc - c0);
            kernels::run(kern, kc, a_panel, b_panel, &mut tile);
            for (r, tile_row) in tile.chunks_exact(kern.nr).enumerate().take(live_rows) {
                let row = ic + r0 + r;
                let dst = &mut c[row * n + jc + c0..row * n + jc + c0 + live_cols];
                for (out, add) in dst.iter_mut().zip(tile_row) {
                    *out += add;
                }
            }
        }
    }
}

#[cfg(test)]
// Exact float assertions are deliberate here: the expected values are
// produced by the same deterministic arithmetic being tested.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;
    use crate::parallel::with_thread_count;

    /// Reference triple loop, k ascending — the accumulation order the
    /// blocked kernel must reproduce exactly for k ≤ KC (scalar kernel; the
    /// FMA kernel fuses each multiply-add, so it matches to tolerance, not
    /// bits).
    fn naive(m: usize, k: usize, n: usize, a: &[f32], b: &[f32]) -> Vec<f32> {
        let mut c = vec![0.0f32; m * n];
        for i in 0..m {
            for p in 0..k {
                let av = a[i * k + p];
                for j in 0..n {
                    c[i * n + j] += av * b[p * n + j];
                }
            }
        }
        c
    }

    fn arb(len: usize, seed: u64) -> Vec<f32> {
        // Small deterministic pseudo-random values without pulling in rand.
        let mut x = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        (0..len)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                ((x >> 40) as f32 / (1u64 << 24) as f32) - 0.5
            })
            .collect()
    }

    #[test]
    fn matches_naive_on_awkward_shapes() {
        for &(m, k, n) in &[
            (1, 1, 1),
            (3, 5, 7),
            (4, 8, 8),
            (5, 9, 17),
            (16, 150, 64),
            (65, 13, 9),
            (7, 300, 33),
        ] {
            let a = arb(m * k, 1 + m as u64);
            let b = arb(k * n, 2 + n as u64);
            let mut c = vec![f32::NAN; m * n];
            gemm(m, k, n, &a, &b, &mut c);
            let want = naive(m, k, n, &a, &b);
            for (got, want) in c.iter().zip(&want) {
                assert!((got - want).abs() <= 1e-4, "({m},{k},{n}): {got} vs {want}");
            }
        }
    }

    #[test]
    fn bitwise_identical_to_naive_within_one_k_block() {
        // For k ≤ KC the scalar kernel's accumulation order is literally
        // identical to the naive loop, so (with the kernel pinned) the
        // result must match bit for bit.
        let (m, k, n) = (10, 100, 20);
        let a = arb(m * k, 3);
        let b = arb(k * n, 4);
        let c = with_scalar_kernel(|| {
            let mut c = vec![0.0f32; m * n];
            gemm(m, k, n, &a, &b, &mut c);
            c
        });
        assert_eq!(c, naive(m, k, n, &a, &b));
    }

    #[test]
    fn simd_kernel_matches_scalar_within_tolerance() {
        // Whatever kernel runtime detection selects must agree with the
        // pinned scalar kernel to FMA-contraction tolerance (1e-4 relative,
        // the bound the parity proptests also use). Trivially exact on
        // hosts where detection already selects scalar.
        let (m, k, n) = (37, 300, 29);
        let a = arb(m * k, 11);
        let b = arb(k * n, 12);
        let mut active = vec![0.0f32; m * n];
        gemm(m, k, n, &a, &b, &mut active);
        let scalar = with_scalar_kernel(|| {
            let mut c = vec![0.0f32; m * n];
            gemm(m, k, n, &a, &b, &mut c);
            c
        });
        for (got, want) in active.iter().zip(&scalar) {
            assert!(
                (got - want).abs() <= 1e-4 * (1.0 + want.abs()),
                "{got} vs {want}"
            );
        }
    }

    #[test]
    fn tn_matches_explicit_transpose() {
        let (m, k, n) = (6, 11, 9);
        let a_t = arb(k * m, 5); // stored [k, m]
        let b = arb(k * n, 6);
        let mut c = vec![0.0f32; m * n];
        gemm_tn(m, k, n, &a_t, &b, &mut c);
        // Explicitly transpose then gemm.
        let mut a = vec![0.0f32; m * k];
        for p in 0..k {
            for i in 0..m {
                a[i * k + p] = a_t[p * m + i];
            }
        }
        let mut want = vec![0.0f32; m * n];
        gemm(m, k, n, &a, &b, &mut want);
        assert_eq!(c, want);
    }

    #[test]
    fn nt_matches_explicit_transpose_and_accumulates() {
        let (m, k, n) = (5, 13, 8);
        let a = arb(m * k, 7);
        let b_t = arb(n * k, 8); // stored [n, k]
        let mut c = vec![0.0f32; m * n];
        gemm_nt(m, k, n, &a, &b_t, &mut c);
        let mut b = vec![0.0f32; k * n];
        for j in 0..n {
            for p in 0..k {
                b[p * n + j] = b_t[j * k + p];
            }
        }
        let mut want = vec![0.0f32; m * n];
        gemm(m, k, n, &a, &b, &mut want);
        assert_eq!(c, want);

        // Accumulating variant adds on top.
        let mut acc = want.clone();
        gemm_nt_acc(m, k, n, &a, &b_t, &mut acc);
        for (x, w) in acc.iter().zip(&want) {
            assert_eq!(*x, 2.0 * w);
        }
    }

    #[test]
    fn thread_count_does_not_change_bits() {
        // Large enough to cross the parallel threshold and span several
        // row chunks and KC blocks. (On a single-core host the worker
        // clamp keeps all of these serial; `worker_partition_does_not_
        // change_bits` exercises the partitioned path unconditionally.)
        let (m, k, n) = (96, 300, 48);
        let a = arb(m * k, 9);
        let b = arb(k * n, 10);
        let serial = with_thread_count(1, || {
            let mut c = vec![0.0f32; m * n];
            gemm(m, k, n, &a, &b, &mut c);
            c
        });
        for threads in [2, 3, 4, 7] {
            let parallel = with_thread_count(threads, || {
                let mut c = vec![0.0f32; m * n];
                gemm(m, k, n, &a, &b, &mut c);
                c
            });
            assert_eq!(parallel, serial, "threads = {threads}");
        }
    }

    #[test]
    fn worker_partition_does_not_change_bits() {
        // Drives `run_partitioned` directly so the shared-packed-B fan-out
        // is exercised even on hosts where `worker_count()` clamps to 1.
        let (m, k, n) = (50, 300, 24);
        let a = arb(m * k, 13);
        let b = arb(k * n, 14);
        let tp = tune::TuneParams::default();
        let mut serial = vec![0.0f32; m * n];
        run_partitioned(
            1,
            m,
            k,
            n,
            Mat::normal(&a, m, k),
            Mat::normal(&b, k, n),
            &mut serial,
            false,
            &tp,
        );
        for workers in [2, 3, 7] {
            let mut fanned = vec![f32::NAN; m * n];
            run_partitioned(
                workers,
                m,
                k,
                n,
                Mat::normal(&a, m, k),
                Mat::normal(&b, k, n),
                &mut fanned,
                false,
                &tp,
            );
            assert_eq!(fanned, serial, "workers = {workers}");
        }
        // Transposed-operand orientations through the same fan-out.
        let mut serial_t = vec![0.0f32; m * n];
        let a_t: Vec<f32> = {
            let mut t = vec![0.0f32; k * m];
            for i in 0..m {
                for p in 0..k {
                    t[p * m + i] = a[i * k + p];
                }
            }
            t
        };
        run_partitioned(
            1,
            m,
            k,
            n,
            Mat::transposed(&a_t, k, m),
            Mat::normal(&b, k, n),
            &mut serial_t,
            false,
            &tp,
        );
        let mut fanned_t = vec![0.0f32; m * n];
        run_partitioned(
            4,
            m,
            k,
            n,
            Mat::transposed(&a_t, k, m),
            Mat::normal(&b, k, n),
            &mut fanned_t,
            false,
            &tp,
        );
        assert_eq!(fanned_t, serial_t);
        assert_eq!(serial_t, serial);
    }

    #[test]
    fn custom_block_sizes_match_defaults_within_tolerance() {
        // Changing MC/NC regroups tiles but never the per-element k order,
        // so with the scalar kernel pinned and kc unchanged the results are
        // bitwise equal; a different KC regroups the k order and matches to
        // tolerance only.
        let (m, k, n) = (33, 500, 21);
        let a = arb(m * k, 15);
        let b = arb(k * n, 16);
        with_scalar_kernel(|| {
            let mut base = vec![0.0f32; m * n];
            gemm_with_params(m, k, n, &a, &b, &mut base, &TuneParams::default());
            let mut same_kc = vec![0.0f32; m * n];
            let tp = TuneParams {
                mc: 24,
                nc: 16,
                ..TuneParams::default()
            };
            gemm_with_params(m, k, n, &a, &b, &mut same_kc, &tp);
            assert_eq!(same_kc, base);
            let mut small_kc = vec![0.0f32; m * n];
            let tp = TuneParams {
                kc: 64,
                ..TuneParams::default()
            };
            gemm_with_params(m, k, n, &a, &b, &mut small_kc, &tp);
            for (got, want) in small_kc.iter().zip(&base) {
                assert!((got - want).abs() <= 1e-4 * (1.0 + want.abs()));
            }
        });
    }

    #[test]
    fn zero_k_zeroes_or_preserves() {
        let mut c = vec![1.0f32; 6];
        gemm(2, 0, 3, &[], &[], &mut c);
        assert_eq!(c, vec![0.0; 6]);
        let mut c = vec![1.0f32; 6];
        gemm_nt_acc(2, 0, 3, &[], &[], &mut c);
        assert_eq!(c, vec![1.0; 6]);
    }
}
