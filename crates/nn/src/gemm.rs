//! Cache-blocked, register-tiled f32 matrix multiplication.
//!
//! The kernel follows the classic BLIS decomposition: the operands are cut
//! into `MC`×`KC` / `KC`×`NC` cache blocks, each block is repacked into
//! contiguous `MR`-row / `NR`-column panels, and an `MR`×`NR` register-tile
//! microkernel accumulates into a fixed-size array the compiler keeps in
//! vector registers. Everything is safe Rust (`chunks_exact` + arrays), so
//! the crate's `#![forbid(unsafe_code)]` holds; autovectorization does the
//! rest.
//!
//! Three orientations cover every product the layers need without ever
//! materializing a transpose:
//!
//! - [`gemm`]: `C = A·B` (forward passes)
//! - [`gemm_tn`]: `C = Aᵀ·B` (weight-space gradients, `Wᵀ·dY`)
//! - [`gemm_nt`] / [`gemm_nt_acc`]: `C (+)= A·Bᵀ` (input-space gradients,
//!   `dY·colᵀ` accumulation)
//!
//! ## Determinism
//!
//! Every output element is accumulated in exactly the same order — `k`
//! ascending, `KC` blocks ascending — no matter how many threads run the
//! kernel: the parallel driver partitions the **rows of C** into disjoint
//! ranges, so threading changes which worker computes an element, never the
//! floating-point order within it. `MVML_THREADS=1` and `MVML_THREADS=64`
//! produce bitwise-identical results (asserted in this module's tests).

use crate::parallel;

/// Rows per register tile.
const MR: usize = 4;
/// Columns per register tile (two 4-lane SSE / one 8-lane AVX vector).
const NR: usize = 8;
/// Rows of A packed per cache block (fits L1/L2 alongside the B panel).
const MC: usize = 64;
/// Shared dimension per cache block.
const KC: usize = 256;
/// Columns of B packed per cache block.
const NC: usize = 256;

/// Minimum number of multiply-adds before the parallel driver engages;
/// below this, thread-spawn latency dominates any speedup.
const PARALLEL_FLOP_THRESHOLD: usize = 1 << 17;

/// A borrowed row-major matrix, optionally accessed transposed.
///
/// `Mat::normal(data, r, c)` views `data` as `r`×`c`; `Mat::transposed`
/// views the same storage as its transpose without moving any element.
#[derive(Clone, Copy)]
struct Mat<'a> {
    data: &'a [f32],
    /// Row stride of the *stored* layout.
    stride: usize,
    transposed: bool,
}

impl<'a> Mat<'a> {
    fn normal(data: &'a [f32], rows: usize, cols: usize) -> Self {
        debug_assert_eq!(data.len(), rows * cols);
        Mat {
            data,
            stride: cols,
            transposed: false,
        }
    }

    fn transposed(data: &'a [f32], stored_rows: usize, stored_cols: usize) -> Self {
        debug_assert_eq!(data.len(), stored_rows * stored_cols);
        Mat {
            data,
            stride: stored_cols,
            transposed: true,
        }
    }

    #[inline]
    fn get(&self, i: usize, j: usize) -> f32 {
        if self.transposed {
            self.data[j * self.stride + i]
        } else {
            self.data[i * self.stride + j]
        }
    }
}

/// `C = A·B` with `A: [m, k]`, `B: [k, n]`, `C: [m, n]`, all row-major.
///
/// # Panics
///
/// Panics if a slice length disagrees with its dimensions.
pub fn gemm(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    assert_eq!(a.len(), m * k, "A must be {m}x{k}");
    assert_eq!(b.len(), k * n, "B must be {k}x{n}");
    assert_eq!(c.len(), m * n, "C must be {m}x{n}");
    driver(
        m,
        k,
        n,
        Mat::normal(a, m, k),
        Mat::normal(b, k, n),
        c,
        false,
    );
}

/// `C = Aᵀ·B` with `A` **stored** `[k, m]`, `B: [k, n]`, `C: [m, n]`.
///
/// Computes the same result as `A.transpose().matmul(B)` without building
/// the transpose.
///
/// # Panics
///
/// Panics if a slice length disagrees with its dimensions.
pub fn gemm_tn(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    assert_eq!(a.len(), k * m, "A must be stored {k}x{m}");
    assert_eq!(b.len(), k * n, "B must be {k}x{n}");
    assert_eq!(c.len(), m * n, "C must be {m}x{n}");
    driver(
        m,
        k,
        n,
        Mat::transposed(a, k, m),
        Mat::normal(b, k, n),
        c,
        false,
    );
}

/// `C += Aᵀ·B` — the accumulating variant of [`gemm_tn`], used to sum
/// weight gradients across backward calls without a scratch matrix.
///
/// # Panics
///
/// Panics if a slice length disagrees with its dimensions.
pub fn gemm_tn_acc(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    assert_eq!(a.len(), k * m, "A must be stored {k}x{m}");
    assert_eq!(b.len(), k * n, "B must be {k}x{n}");
    assert_eq!(c.len(), m * n, "C must be {m}x{n}");
    driver(
        m,
        k,
        n,
        Mat::transposed(a, k, m),
        Mat::normal(b, k, n),
        c,
        true,
    );
}

/// `C = A·Bᵀ` with `A: [m, k]`, `B` **stored** `[n, k]`, `C: [m, n]`.
///
/// # Panics
///
/// Panics if a slice length disagrees with its dimensions.
pub fn gemm_nt(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    assert_eq!(a.len(), m * k, "A must be {m}x{k}");
    assert_eq!(b.len(), n * k, "B must be stored {n}x{k}");
    assert_eq!(c.len(), m * n, "C must be {m}x{n}");
    driver(
        m,
        k,
        n,
        Mat::normal(a, m, k),
        Mat::transposed(b, n, k),
        c,
        false,
    );
}

/// `C += A·Bᵀ` — the accumulating variant of [`gemm_nt`], used to sum
/// per-image weight gradients without a scratch matrix per image.
///
/// # Panics
///
/// Panics if a slice length disagrees with its dimensions.
pub fn gemm_nt_acc(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    assert_eq!(a.len(), m * k, "A must be {m}x{k}");
    assert_eq!(b.len(), n * k, "B must be stored {n}x{k}");
    assert_eq!(c.len(), m * n, "C must be {m}x{n}");
    driver(
        m,
        k,
        n,
        Mat::normal(a, m, k),
        Mat::transposed(b, n, k),
        c,
        true,
    );
}

/// Row-partitioned parallel driver: splits `C`'s rows across
/// [`parallel::thread_count`] workers and runs the blocked kernel on each
/// disjoint range. Small products stay serial.
fn driver(m: usize, k: usize, n: usize, a: Mat<'_>, b: Mat<'_>, c: &mut [f32], accumulate: bool) {
    if m == 0 || n == 0 {
        return;
    }
    if k == 0 {
        if !accumulate {
            c.fill(0.0);
        }
        return;
    }
    let threads = parallel::thread_count().min(m);
    if threads <= 1 || m * k * n < PARALLEL_FLOP_THRESHOLD {
        block_panel(m, k, n, 0, a, b, c, accumulate);
        return;
    }
    // Round row chunks up to MR so tile boundaries stay aligned and no
    // worker gets an empty range.
    let rows_per = m.div_ceil(threads).div_ceil(MR) * MR;
    crossbeam::thread::scope(|scope| {
        for (chunk_idx, c_rows) in c.chunks_mut(rows_per * n).enumerate() {
            let row0 = chunk_idx * rows_per;
            let rows = c_rows.len() / n;
            scope.spawn(move |_| {
                block_panel(rows, k, n, row0, a, b, c_rows, accumulate);
            });
        }
    })
    .expect("gemm worker panicked");
}

/// Blocked kernel over a row range: computes `C[row0..row0+rows, :]` into
/// `c` (a `rows`×`n` slice). Accumulation order per element is fixed: `KC`
/// blocks ascending, `k` ascending within each block.
#[allow(clippy::too_many_arguments)]
fn block_panel(
    rows: usize,
    k: usize,
    n: usize,
    row0: usize,
    a: Mat<'_>,
    b: Mat<'_>,
    c: &mut [f32],
    accumulate: bool,
) {
    if !accumulate {
        c.fill(0.0);
    }
    let mut a_pack = vec![0.0f32; MC * KC];
    let mut b_pack = vec![0.0f32; KC * NC];
    for jc in (0..n).step_by(NC) {
        let nc = NC.min(n - jc);
        for pc in (0..k).step_by(KC) {
            let kc = KC.min(k - pc);
            pack_b(&mut b_pack, b, pc, kc, jc, nc);
            for ic in (0..rows).step_by(MC) {
                let mc = MC.min(rows - ic);
                pack_a(&mut a_pack, a, row0 + ic, mc, pc, kc);
                multiply_block(&a_pack, &b_pack, c, ic, mc, jc, nc, kc, n);
            }
        }
    }
}

/// Packs `A[row0..row0+mc, pc..pc+kc]` into `MR`-row panels, each panel
/// stored k-major (`panel[p*MR + r]`), zero-padding the row remainder so
/// the microkernel never branches. When `A` is a stored transpose, each
/// panel slot is a contiguous run of the stored layout and packs with
/// `copy_from_slice` instead of scalar gathers.
fn pack_a(pack: &mut [f32], a: Mat<'_>, row0: usize, mc: usize, pc: usize, kc: usize) {
    for (panel_idx, panel) in pack.chunks_mut(MR * KC).enumerate().take(mc.div_ceil(MR)) {
        let r0 = panel_idx * MR;
        let live = MR.min(mc - r0);
        if a.transposed && live == MR {
            for (p, slot) in panel.chunks_exact_mut(MR).enumerate().take(kc) {
                let src = &a.data[(pc + p) * a.stride + row0 + r0..][..MR];
                slot.copy_from_slice(src);
            }
        } else {
            for (p, slot) in panel.chunks_exact_mut(MR).enumerate().take(kc) {
                for (r, out) in slot.iter_mut().enumerate() {
                    *out = if r < live {
                        a.get(row0 + r0 + r, pc + p)
                    } else {
                        0.0
                    };
                }
            }
        }
    }
}

/// Packs `B[pc..pc+kc, jc..jc+nc]` into `NR`-column panels, each panel
/// stored k-major (`panel[p*NR + c]`), zero-padding the column remainder.
/// For row-major `B` each panel slot is a contiguous row run, so the
/// common case is a straight `copy_from_slice` — packing cost matters for
/// flat operands like im2col matrices where `k` is small.
fn pack_b(pack: &mut [f32], b: Mat<'_>, pc: usize, kc: usize, jc: usize, nc: usize) {
    for (panel_idx, panel) in pack.chunks_mut(NR * KC).enumerate().take(nc.div_ceil(NR)) {
        let c0 = panel_idx * NR;
        let live = NR.min(nc - c0);
        if !b.transposed && live == NR {
            for (p, slot) in panel.chunks_exact_mut(NR).enumerate().take(kc) {
                let src = &b.data[(pc + p) * b.stride + jc + c0..][..NR];
                slot.copy_from_slice(src);
            }
        } else {
            for (p, slot) in panel.chunks_exact_mut(NR).enumerate().take(kc) {
                for (cc, out) in slot.iter_mut().enumerate() {
                    *out = if cc < live {
                        b.get(pc + p, jc + c0 + cc)
                    } else {
                        0.0
                    };
                }
            }
        }
    }
}

/// Multiplies one packed `mc`×`kc` A block against one packed `kc`×`nc` B
/// block, adding into `C[ic.., jc..]` (`ldc = n`).
#[allow(clippy::too_many_arguments)]
fn multiply_block(
    a_pack: &[f32],
    b_pack: &[f32],
    c: &mut [f32],
    ic: usize,
    mc: usize,
    jc: usize,
    nc: usize,
    kc: usize,
    n: usize,
) {
    for (a_idx, a_panel) in a_pack.chunks(MR * KC).enumerate().take(mc.div_ceil(MR)) {
        let r0 = a_idx * MR;
        let live_rows = MR.min(mc - r0);
        for (b_idx, b_panel) in b_pack.chunks(NR * KC).enumerate().take(nc.div_ceil(NR)) {
            let c0 = b_idx * NR;
            let live_cols = NR.min(nc - c0);
            let tile = microkernel(kc, a_panel, b_panel);
            for (r, tile_row) in tile.iter().enumerate().take(live_rows) {
                let row = ic + r0 + r;
                let dst = &mut c[row * n + jc + c0..row * n + jc + c0 + live_cols];
                for (out, add) in dst.iter_mut().zip(tile_row) {
                    *out += add;
                }
            }
        }
    }
}

/// The `MR`×`NR` register tile: `tile[r][c] = Σ_p a_panel[p][r] ·
/// b_panel[p][c]` over `kc` steps. Fixed-size arrays + `chunks_exact` keep
/// the accumulators in registers and let LLVM vectorize the `NR` lane loop.
#[inline]
fn microkernel(kc: usize, a_panel: &[f32], b_panel: &[f32]) -> [[f32; NR]; MR] {
    let mut tile = [[0.0f32; NR]; MR];
    for (a, b) in a_panel
        .chunks_exact(MR)
        .zip(b_panel.chunks_exact(NR))
        .take(kc)
    {
        let b: &[f32; NR] = b.try_into().expect("NR chunk");
        for (r, tile_row) in tile.iter_mut().enumerate() {
            let ar = a[r];
            for (acc, &bv) in tile_row.iter_mut().zip(b) {
                *acc += ar * bv;
            }
        }
    }
    tile
}

#[cfg(test)]
// Exact float assertions are deliberate here: the expected values are
// produced by the same deterministic arithmetic being tested.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;
    use crate::parallel::with_thread_count;

    /// Reference triple loop, k ascending — the accumulation order the
    /// blocked kernel must reproduce exactly for k ≤ KC.
    fn naive(m: usize, k: usize, n: usize, a: &[f32], b: &[f32]) -> Vec<f32> {
        let mut c = vec![0.0f32; m * n];
        for i in 0..m {
            for p in 0..k {
                let av = a[i * k + p];
                for j in 0..n {
                    c[i * n + j] += av * b[p * n + j];
                }
            }
        }
        c
    }

    fn arb(len: usize, seed: u64) -> Vec<f32> {
        // Small deterministic pseudo-random values without pulling in rand.
        let mut x = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        (0..len)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                ((x >> 40) as f32 / (1u64 << 24) as f32) - 0.5
            })
            .collect()
    }

    #[test]
    fn matches_naive_on_awkward_shapes() {
        for &(m, k, n) in &[
            (1, 1, 1),
            (3, 5, 7),
            (4, 8, 8),
            (5, 9, 17),
            (16, 150, 64),
            (65, 13, 9),
            (7, 300, 33),
        ] {
            let a = arb(m * k, 1 + m as u64);
            let b = arb(k * n, 2 + n as u64);
            let mut c = vec![f32::NAN; m * n];
            gemm(m, k, n, &a, &b, &mut c);
            let want = naive(m, k, n, &a, &b);
            for (got, want) in c.iter().zip(&want) {
                assert!((got - want).abs() <= 1e-4, "({m},{k},{n}): {got} vs {want}");
            }
        }
    }

    #[test]
    fn bitwise_identical_to_naive_within_one_k_block() {
        // For k ≤ KC the accumulation order is literally identical, so the
        // result must match the naive loop bit for bit.
        let (m, k, n) = (10, 100, 20);
        let a = arb(m * k, 3);
        let b = arb(k * n, 4);
        let mut c = vec![0.0f32; m * n];
        gemm(m, k, n, &a, &b, &mut c);
        assert_eq!(c, naive(m, k, n, &a, &b));
    }

    #[test]
    fn tn_matches_explicit_transpose() {
        let (m, k, n) = (6, 11, 9);
        let a_t = arb(k * m, 5); // stored [k, m]
        let b = arb(k * n, 6);
        let mut c = vec![0.0f32; m * n];
        gemm_tn(m, k, n, &a_t, &b, &mut c);
        // Explicitly transpose then gemm.
        let mut a = vec![0.0f32; m * k];
        for p in 0..k {
            for i in 0..m {
                a[i * k + p] = a_t[p * m + i];
            }
        }
        let mut want = vec![0.0f32; m * n];
        gemm(m, k, n, &a, &b, &mut want);
        assert_eq!(c, want);
    }

    #[test]
    fn nt_matches_explicit_transpose_and_accumulates() {
        let (m, k, n) = (5, 13, 8);
        let a = arb(m * k, 7);
        let b_t = arb(n * k, 8); // stored [n, k]
        let mut c = vec![0.0f32; m * n];
        gemm_nt(m, k, n, &a, &b_t, &mut c);
        let mut b = vec![0.0f32; k * n];
        for j in 0..n {
            for p in 0..k {
                b[p * n + j] = b_t[j * k + p];
            }
        }
        let mut want = vec![0.0f32; m * n];
        gemm(m, k, n, &a, &b, &mut want);
        assert_eq!(c, want);

        // Accumulating variant adds on top.
        let mut acc = want.clone();
        gemm_nt_acc(m, k, n, &a, &b_t, &mut acc);
        for (x, w) in acc.iter().zip(&want) {
            assert_eq!(*x, 2.0 * w);
        }
    }

    #[test]
    fn thread_count_does_not_change_bits() {
        // Large enough to cross PARALLEL_FLOP_THRESHOLD and span several
        // row chunks and KC blocks.
        let (m, k, n) = (96, 300, 48);
        let a = arb(m * k, 9);
        let b = arb(k * n, 10);
        let serial = with_thread_count(1, || {
            let mut c = vec![0.0f32; m * n];
            gemm(m, k, n, &a, &b, &mut c);
            c
        });
        for threads in [2, 3, 4, 7] {
            let parallel = with_thread_count(threads, || {
                let mut c = vec![0.0f32; m * n];
                gemm(m, k, n, &a, &b, &mut c);
                c
            });
            assert_eq!(parallel, serial, "threads = {threads}");
        }
    }

    #[test]
    fn zero_k_zeroes_or_preserves() {
        let mut c = vec![1.0f32; 6];
        gemm(2, 0, 3, &[], &[], &mut c);
        assert_eq!(c, vec![0.0; 6]);
        let mut c = vec![1.0f32; 6];
        gemm_nt_acc(2, 0, 3, &[], &[], &mut c);
        assert_eq!(c, vec![1.0; 6]);
    }
}
