//! Optimisers.

use crate::model::Sequential;

/// Stochastic gradient descent with classical momentum and optional weight
/// decay.
#[derive(Debug, Clone)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f32,
    /// Momentum factor in `[0, 1)`; 0 disables momentum.
    pub momentum: f32,
    /// L2 weight decay coefficient.
    pub weight_decay: f32,
    velocity: Vec<Vec<f32>>,
}

impl Sgd {
    /// Creates an optimiser with the given learning rate, no momentum, no
    /// weight decay.
    pub fn new(lr: f32) -> Self {
        Sgd {
            lr,
            momentum: 0.0,
            weight_decay: 0.0,
            velocity: Vec::new(),
        }
    }

    /// Sets the momentum factor (builder style).
    #[must_use]
    pub fn with_momentum(mut self, momentum: f32) -> Self {
        self.momentum = momentum;
        self
    }

    /// Sets the weight-decay coefficient (builder style).
    #[must_use]
    pub fn with_weight_decay(mut self, weight_decay: f32) -> Self {
        self.weight_decay = weight_decay;
        self
    }

    /// Applies one update step from the gradients currently accumulated in
    /// `model`, then zeroes them.
    ///
    /// # Panics
    ///
    /// Panics if the model's parameter structure changed between steps.
    pub fn step(&mut self, model: &mut Sequential) {
        let params = model.all_params();
        if self.velocity.is_empty() {
            self.velocity = params.iter().map(|p| vec![0.0; p.values.len()]).collect();
        }
        assert_eq!(
            self.velocity.len(),
            params.len(),
            "parameter structure changed"
        );
        for (p, vel) in params.into_iter().zip(&mut self.velocity) {
            assert_eq!(vel.len(), p.values.len(), "parameter size changed");
            for ((w, g), v) in p
                .values
                .iter_mut()
                .zip(p.grads.iter_mut())
                .zip(vel.iter_mut())
            {
                let grad = *g + self.weight_decay * *w;
                *v = self.momentum * *v + grad;
                *w -= self.lr * *v;
                *g = 0.0;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::Dense;
    use crate::loss::softmax_cross_entropy;
    use crate::tensor::Tensor;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn model(seed: u64) -> Sequential {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut m = Sequential::new("m");
        m.push(Dense::new(2, 2, &mut rng));
        m
    }

    #[test]
    fn plain_sgd_descends_quadratic() {
        use crate::layer::Layer;
        // single linear layer trained to map [1,0] -> class 0
        let mut m = model(0);
        let x = Tensor::from_vec(&[1, 2], vec![1.0, 0.0]);
        let mut opt = Sgd::new(0.5);
        let mut last = f32::INFINITY;
        for _ in 0..50 {
            let y = m.forward(&x, true);
            let (loss, grad) = softmax_cross_entropy(&y, &[0]);
            m.backward(&grad);
            opt.step(&mut m);
            assert!(loss <= last + 1e-4, "loss increased: {loss} > {last}");
            last = loss;
        }
        assert!(last < 0.05, "final loss {last}");
    }

    #[test]
    fn step_zeroes_gradients() {
        use crate::layer::Layer;
        let mut m = model(1);
        let x = Tensor::from_vec(&[1, 2], vec![1.0, -1.0]);
        let y = m.forward(&x, true);
        let (_, grad) = softmax_cross_entropy(&y, &[1]);
        m.backward(&grad);
        let mut opt = Sgd::new(0.1);
        opt.step(&mut m);
        assert!(m
            .all_params()
            .iter()
            .all(|p| p.grads.iter().all(|&g| g == 0.0)));
    }

    #[test]
    fn momentum_accumulates_velocity() {
        use crate::layer::Layer;
        // With constant gradient g, momentum m: effective step grows toward
        // lr * g / (1-m). Verify the second step is larger than the first.
        let mut m1 = model(2);
        let x = Tensor::from_vec(&[1, 2], vec![1.0, 1.0]);
        let mut opt = Sgd::new(0.01).with_momentum(0.9);
        let w0 = m1.all_params()[0].values[0];
        let y = m1.forward(&x, true);
        let (_, grad) = softmax_cross_entropy(&y, &[0]);
        m1.backward(&grad);
        opt.step(&mut m1);
        let w1 = m1.all_params()[0].values[0];
        let y = m1.forward(&x, true);
        let (_, grad) = softmax_cross_entropy(&y, &[0]);
        m1.backward(&grad);
        opt.step(&mut m1);
        let w2 = m1.all_params()[0].values[0];
        let step1 = (w1 - w0).abs();
        let step2 = (w2 - w1).abs();
        assert!(
            step2 > step1,
            "momentum should grow the step: {step1} vs {step2}"
        );
    }

    #[test]
    fn weight_decay_shrinks_weights_without_gradient() {
        let mut m = model(3);
        // grads are zero: decay alone should shrink weights
        let before: Vec<f32> = m.all_params()[0].values.to_vec();
        let mut opt = Sgd::new(0.1).with_weight_decay(0.5);
        opt.step(&mut m);
        let after: Vec<f32> = m.all_params()[0].values.to_vec();
        for (b, a) in before.iter().zip(&after) {
            assert!(a.abs() < b.abs() || *b == 0.0);
        }
    }
}
