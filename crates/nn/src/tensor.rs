//! A minimal dense tensor type (row-major, `f32`).
//!
//! This is deliberately small: just what the layers in this crate need —
//! shape bookkeeping, elementwise ops, and a matrix multiply. No views, no
//! broadcasting, no autograd; layers implement their own backward passes.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A dense, row-major `f32` tensor.
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a tensor of zeros with the given shape.
    ///
    /// # Panics
    ///
    /// Panics if the shape has zero elements in total.
    pub fn zeros(shape: &[usize]) -> Self {
        let n: usize = shape.iter().product();
        assert!(n > 0, "tensor shape {shape:?} has zero elements");
        Tensor {
            shape: shape.to_vec(),
            data: vec![0.0; n],
        }
    }

    /// Creates a tensor from explicit data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not match the shape's element count.
    pub fn from_vec(shape: &[usize], data: Vec<f32>) -> Self {
        let n: usize = shape.iter().product();
        assert_eq!(
            n,
            data.len(),
            "shape {shape:?} needs {n} elements, got {}",
            data.len()
        );
        Tensor {
            shape: shape.to_vec(),
            data,
        }
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` if the tensor holds no elements (never true for
    /// constructed tensors).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the underlying data.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying data.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Reinterprets the tensor with a new shape of equal element count.
    ///
    /// # Panics
    ///
    /// Panics if the element counts differ.
    pub fn reshape(&self, shape: &[usize]) -> Tensor {
        let n: usize = shape.iter().product();
        assert_eq!(
            n,
            self.data.len(),
            "cannot reshape {:?} to {shape:?}",
            self.shape
        );
        Tensor {
            shape: shape.to_vec(),
            data: self.data.clone(),
        }
    }

    /// Elementwise addition.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.shape, other.shape, "shape mismatch in add");
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a + b)
            .collect();
        Tensor {
            shape: self.shape.clone(),
            data,
        }
    }

    /// Elementwise in-place addition.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!(self.shape, other.shape, "shape mismatch in add_assign");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// Scales every element by `s`.
    pub fn scale(&mut self, s: f32) {
        for v in &mut self.data {
            *v *= s;
        }
    }

    /// Maximum absolute element (0 for — impossible — empty tensors).
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, v| m.max(v.abs()))
    }

    /// Matrix multiply: `self` is `[m, k]`, `other` is `[k, n]`, result
    /// `[m, n]`.
    ///
    /// # Panics
    ///
    /// Panics unless both operands are rank-2 with matching inner dims.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.shape.len(), 2, "matmul lhs must be rank 2");
        assert_eq!(other.shape.len(), 2, "matmul rhs must be rank 2");
        let (m, k) = (self.shape[0], self.shape[1]);
        let (k2, n) = (other.shape[0], other.shape[1]);
        assert_eq!(k, k2, "matmul inner dims {k} vs {k2}");
        let mut out = vec![0.0f32; m * n];
        crate::gemm::gemm(m, k, n, &self.data, &other.data, &mut out);
        Tensor {
            shape: vec![m, n],
            data: out,
        }
    }

    /// Transposes a rank-2 tensor.
    ///
    /// # Panics
    ///
    /// Panics unless the tensor is rank 2.
    pub fn transpose(&self) -> Tensor {
        assert_eq!(self.shape.len(), 2, "transpose needs rank 2");
        let (m, n) = (self.shape[0], self.shape[1]);
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                out[j * m + i] = self.data[i * n + j];
            }
        }
        Tensor {
            shape: vec![n, m],
            data: out,
        }
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor(shape={:?}", self.shape)?;
        if self.data.len() <= 8 {
            write!(f, ", data={:?})", self.data)
        } else {
            write!(f, ", data=[{} elems])", self.data.len())
        }
    }
}

#[cfg(test)]
// Exact float assertions are deliberate here: the expected values are
// produced by the same deterministic arithmetic being tested.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_shape() {
        let t = Tensor::zeros(&[2, 3]);
        assert_eq!(t.shape(), &[2, 3]);
        assert_eq!(t.len(), 6);
        assert!(!t.is_empty());
        assert!(t.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    #[should_panic(expected = "zero elements")]
    fn zeros_rejects_empty_shape() {
        let _ = Tensor::zeros(&[2, 0]);
    }

    #[test]
    fn from_vec_validates_len() {
        let t = Tensor::from_vec(&[2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(t.as_slice(), &[1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "needs 4 elements")]
    fn from_vec_rejects_bad_len() {
        let _ = Tensor::from_vec(&[2, 2], vec![1.0]);
    }

    #[test]
    fn matmul_known_product() {
        let a = Tensor::from_vec(&[2, 3], vec![1., 2., 3., 4., 5., 6.]);
        let b = Tensor::from_vec(&[3, 2], vec![7., 8., 9., 10., 11., 12.]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), &[2, 2]);
        assert_eq!(c.as_slice(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn matmul_with_zero_rows_skips_correctly() {
        let a = Tensor::from_vec(&[1, 3], vec![0., 1., 0.]);
        let b = Tensor::from_vec(&[3, 2], vec![5., 6., 7., 8., 9., 10.]);
        assert_eq!(a.matmul(&b).as_slice(), &[7., 8.]);
    }

    #[test]
    fn transpose_round_trip() {
        let a = Tensor::from_vec(&[2, 3], vec![1., 2., 3., 4., 5., 6.]);
        let t = a.transpose();
        assert_eq!(t.shape(), &[3, 2]);
        assert_eq!(t.as_slice(), &[1., 4., 2., 5., 3., 6.]);
        assert_eq!(t.transpose(), a);
    }

    #[test]
    fn elementwise_ops() {
        let a = Tensor::from_vec(&[3], vec![1., -2., 3.]);
        let b = Tensor::from_vec(&[3], vec![0.5, 0.5, 0.5]);
        assert_eq!(a.add(&b).as_slice(), &[1.5, -1.5, 3.5]);
        let mut c = a.clone();
        c.add_assign(&b);
        assert_eq!(c.as_slice(), &[1.5, -1.5, 3.5]);
        c.scale(2.0);
        assert_eq!(c.as_slice(), &[3.0, -3.0, 7.0]);
        assert_eq!(a.max_abs(), 3.0);
    }

    #[test]
    fn reshape_preserves_data() {
        let a = Tensor::from_vec(&[2, 2], vec![1., 2., 3., 4.]);
        let r = a.reshape(&[4]);
        assert_eq!(r.shape(), &[4]);
        assert_eq!(r.as_slice(), a.as_slice());
    }

    #[test]
    fn serde_round_trip() {
        let a = Tensor::from_vec(&[2, 2], vec![1., 2., 3., 4.]);
        let json = serde_json::to_string(&a).unwrap();
        let b: Tensor = serde_json::from_str(&json).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn debug_is_compact_for_large_tensors() {
        let t = Tensor::zeros(&[100]);
        let s = format!("{t:?}");
        assert!(s.contains("100 elems"));
    }
}
