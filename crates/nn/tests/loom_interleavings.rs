//! Exhaustive-interleaving models of the parallel GEMM handoff protocol.
//!
//! `mvml_nn::gemm::run_partitioned` packs B once into a shared read-only
//! buffer, spawns scoped workers over disjoint `chunks_mut` row ranges of
//! `C`, and fixes the per-element accumulation order (KC blocks ascending,
//! k ascending within each block). These tests model that protocol with the
//! offline `loom` stand-in and explore *every* sequentially-consistent
//! interleaving of the workers' yield points:
//!
//! * the positive model proves the publish-before-spawn handoff plus
//!   disjoint row ownership yields a **bitwise identical** `C` in every
//!   schedule (float addition is not associative, so any ordering race
//!   would flip bits — the KC values are chosen so a single reorder is
//!   observable);
//! * the negative model drops the disjoint-ownership discipline and
//!   asserts the explorer *does* find the resulting lost update, i.e. the
//!   lane has teeth.
//!
//! This file only builds in the loom lane (`RUSTFLAGS="--cfg loom"`,
//! see ci.sh); the ordinary test run compiles it to nothing.
#![cfg(loom)]

use loom::cell::UnsafeCell;
use loom::sync::atomic::{AtomicBool, Ordering};
use loom::sync::Arc;
use loom::thread;
use std::collections::BTreeSet;
use std::sync::Mutex;

/// Per-row KC-block contributions. Summed in ascending order the f32
/// result is exactly `0.0` (`1e8 + 1.0 == 1e8` in f32); any schedule that
/// perturbs the order (e.g. `1.0` accumulated last) yields `1.0` — a
/// bitwise discriminator for accumulation-order races.
const KC_VALUES: [f32; 3] = [1.0e8, 1.0, -1.0e8];

/// The serial reference: ascending-k fold, the order `block_panel` fixes.
fn ascending_sum() -> f32 {
    KC_VALUES.iter().fold(0.0f32, |acc, &v| acc + v)
}

#[test]
fn kc_values_discriminate_accumulation_order() {
    // Sanity-check the discriminator itself: the ascending fold and a
    // reordered fold must differ bitwise, otherwise the models below
    // could not observe an ordering race at all.
    let reordered = (KC_VALUES[0] + KC_VALUES[2]) + KC_VALUES[1];
    assert_ne!(ascending_sum().to_bits(), reordered.to_bits());
    assert_eq!(ascending_sum().to_bits(), 0.0f32.to_bits());
}

/// Positive model: packed-B publish-before-spawn + disjoint row ownership
/// + ascending-k accumulation gives every interleaving the same bits.
///
/// Mirrors `run_partitioned`: the spawner fills the shared pack, raises
/// the published flag, *then* spawns; each worker asserts it observes the
/// publication, reads its row's KC blocks (each read a scheduling decision
/// point, so worker reads interleave freely), accumulates in ascending
/// order, and writes its own row of `C`.
#[test]
fn shared_packed_b_handoff_has_no_ordering_race() {
    const WORKERS: usize = 2;
    let schedules = std::sync::Arc::new(Mutex::new(0usize));
    let schedules2 = std::sync::Arc::clone(&schedules);
    loom::model(move || {
        *schedules2.lock().expect("outcome lock") += 1;
        // Shared pack, one row of KC blocks per worker; NaN until published
        // so a premature read is bitwise-visible too.
        let packed = Arc::new(UnsafeCell::new(vec![f32::NAN; WORKERS * KC_VALUES.len()]));
        let published = Arc::new(AtomicBool::new(false));
        let c = Arc::new(UnsafeCell::new(vec![f32::NAN; WORKERS]));

        packed.with_mut(|p| {
            // SAFETY: no worker exists yet; the spawner is the only thread
            // touching the pack, exactly like `PackedB::build` before
            // `scope.spawn`.
            let p = unsafe { &mut *p };
            for row in 0..WORKERS {
                p[row * KC_VALUES.len()..(row + 1) * KC_VALUES.len()].copy_from_slice(&KC_VALUES);
            }
        });
        published.store(true, Ordering::Release);

        let handles: Vec<_> = (0..WORKERS)
            .map(|w| {
                let packed = Arc::clone(&packed);
                let published = Arc::clone(&published);
                let c = Arc::clone(&c);
                thread::spawn(move || {
                    // The spawn edge must make the publication visible in
                    // every schedule — the model proves no interleaving
                    // lets a worker start before the pack is complete.
                    assert!(
                        published.load(Ordering::Acquire),
                        "worker {w} started before packed B was published"
                    );
                    let mut acc = 0.0f32;
                    for kc in 0..KC_VALUES.len() {
                        // One decision point per KC-block read: worker
                        // reads interleave arbitrarily with the peer's.
                        let v = packed.with(|p| {
                            // SAFETY: the pack is read-only after
                            // publication; all writers finished before the
                            // spawn edge above.
                            unsafe { (*p).as_slice()[w * KC_VALUES.len() + kc] }
                        });
                        acc += v;
                    }
                    c.with_mut(|p| {
                        // SAFETY: row `w` is owned exclusively by worker
                        // `w` — the disjoint partition `chunks_mut` gives
                        // the real kernel.
                        unsafe { (*p).as_mut_slice()[w] = acc };
                    });
                })
            })
            .collect();
        for h in handles {
            h.join().expect("worker panicked");
        }

        let expected = ascending_sum().to_bits();
        c.with(|p| {
            // SAFETY: all workers joined; the spawner is again the only
            // thread touching `C`.
            let c = unsafe { &*p };
            for (w, &got) in c.iter().enumerate() {
                assert_eq!(
                    got.to_bits(),
                    expected,
                    "worker {w}: accumulation order perturbed ({got} != {})",
                    ascending_sum()
                );
            }
        });
    });
    // The lane is only meaningful if it actually explored more than one
    // schedule of the worker reads/writes.
    let n = *schedules.lock().expect("outcome lock");
    assert!(n > 1, "expected multiple interleavings, explored {n}");
}

/// Negative model: drop the disjoint-ownership discipline (both workers
/// read-modify-write the *same* `C` element) and the explorer must find
/// the lost update. This is the race `chunks_mut` partitioning prevents —
/// and proof the lane would catch a future regression of that discipline.
#[test]
fn overlapping_row_ranges_lose_updates_and_the_explorer_finds_it() {
    let outcomes = std::sync::Arc::new(Mutex::new(BTreeSet::new()));
    let outcomes2 = std::sync::Arc::clone(&outcomes);
    loom::model(move || {
        let c = Arc::new(UnsafeCell::new(0.0f32));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let c = Arc::clone(&c);
                thread::spawn(move || {
                    // Unsynchronized read-modify-write of a shared element:
                    // the read and the write are separate decision points,
                    // so some schedule interleaves the peer between them.
                    let seen = c.with(|p| {
                        // SAFETY: the model serializes execution; the race
                        // being modelled is the lost update between the
                        // read and the write, not a memory-level data race.
                        unsafe { *p }
                    });
                    c.with_mut(|p| {
                        // SAFETY: as above — serialized under the model.
                        unsafe { *p = seen + 1.0 };
                    });
                })
            })
            .collect();
        for h in handles {
            h.join().expect("worker panicked");
        }
        let total = c.with(|p| {
            // SAFETY: workers joined; only this thread accesses the cell.
            unsafe { *p }
        });
        outcomes2
            .lock()
            .expect("outcome lock")
            .insert(total.to_bits());
    });
    let seen = outcomes.lock().expect("outcome lock").clone();
    assert!(
        seen.contains(&2.0f32.to_bits()),
        "clean schedule never observed"
    );
    assert!(
        seen.contains(&1.0f32.to_bits()),
        "the lost update was not found — the interleaving explorer is not exhaustive"
    );
}
