//! Property-based parity: the blocked GEMM kernels against naive references,
//! and the layers' GEMM paths against the direct-loop reference kernels.

use mvml_nn::gemm::{gemm, gemm_i8, gemm_nt, gemm_tn, with_scalar_kernel};
use mvml_nn::layer::Layer;
use mvml_nn::layers::{Conv2d, Dense, KernelPath};
use mvml_nn::quant::{dequantize, quantize, symmetric_scale};
use mvml_nn::Tensor;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Deterministic pseudo-random fill in `[-0.5, 0.5)`: keeps the property
/// tests reproducible independent of the strategy RNG's draw order.
fn fill(len: usize, salt: u64) -> Vec<f32> {
    (0..len)
        .map(|i| {
            let h = (i as u64)
                .wrapping_add(salt)
                .wrapping_mul(0x9E37_79B9_7F4A_7C15);
            ((h >> 40) as f32 / (1u64 << 24) as f32) - 0.5
        })
        .collect()
}

fn naive_gemm(m: usize, k: usize, n: usize, a: &[f32], b: &[f32]) -> Vec<f32> {
    let mut c = vec![0.0f32; m * n];
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f32;
            for p in 0..k {
                acc += a[i * k + p] * b[p * n + j];
            }
            c[i * n + j] = acc;
        }
    }
    c
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Blocked GEMM agrees with the naive triple loop across awkward shapes,
    /// including k spanning multiple KC blocks.
    #[test]
    #[cfg_attr(miri, ignore)]
    fn gemm_matches_naive(m in 1usize..24, k in 1usize..320, n in 1usize..24, salt in 0u64..1_000) {
        let a = fill(m * k, salt);
        let b = fill(k * n, salt ^ 0xABCD);
        let mut c = vec![0.0f32; m * n];
        gemm(m, k, n, &a, &b, &mut c);
        let reference = naive_gemm(m, k, n, &a, &b);
        // 1e-4 rather than 1e-5: the FMA microkernel fuses the rounding of
        // each multiply-add, so cancellation-heavy dot products can drift
        // further from the strictly-rounded naive loop.
        for (got, want) in c.iter().zip(&reference) {
            prop_assert!(
                (got - want).abs() <= 1e-4 * (1.0 + want.abs()),
                "gemm {m}x{k}x{n}: {got} vs {want}"
            );
        }
    }

    /// The SIMD microkernel agrees with the scalar-unrolled fallback to the
    /// same relative tolerance (different accumulation grouping, so bitwise
    /// equality is not expected — exact determinism is per-kernel).
    #[test]
    #[cfg_attr(miri, ignore)]
    fn simd_kernel_matches_scalar_fallback(
        m in 1usize..24, k in 1usize..320, n in 1usize..24, salt in 0u64..1_000,
    ) {
        let a = fill(m * k, salt);
        let b = fill(k * n, salt ^ 0x77);
        let mut fast = vec![0.0f32; m * n];
        gemm(m, k, n, &a, &b, &mut fast);
        let mut scalar = vec![0.0f32; m * n];
        with_scalar_kernel(|| gemm(m, k, n, &a, &b, &mut scalar));
        for (got, want) in fast.iter().zip(&scalar) {
            prop_assert!(
                (got - want).abs() <= 1e-4 * (1.0 + want.abs()),
                "simd vs scalar {m}x{k}x{n}: {got} vs {want}"
            );
        }
    }

    /// The i8×i8→i32 GEMM is integer arithmetic: it must match the naive
    /// triple loop *exactly*, remainder tiles and all, on whatever kernel
    /// the host dispatches.
    #[test]
    #[cfg_attr(miri, ignore)]
    fn gemm_i8_matches_naive_exactly(
        m in 1usize..24, k in 1usize..320, n in 1usize..24, salt in 0u64..1_000,
    ) {
        let quantish = |len: usize, s: u64| -> Vec<i8> {
            (0..len)
                .map(|i| {
                    let h = (i as u64).wrapping_add(s).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                    ((h >> 32) % 255) as i32 as i8 // wraps into [-128, 126]…
                })
                .map(|v| if v == i8::MIN { 0 } else { v }) // kernel domain is [-127, 127]
                .collect()
        };
        let a = quantish(m * k, salt);
        let b = quantish(k * n, salt ^ 0xBEEF);
        let mut c = vec![0i32; m * n];
        gemm_i8(m, k, n, &a, &b, &mut c);
        for i in 0..m {
            for j in 0..n {
                let want: i32 = (0..k)
                    .map(|p| i32::from(a[i * k + p]) * i32::from(b[p * n + j]))
                    .sum();
                prop_assert!(
                    c[i * n + j] == want,
                    "i8 gemm {m}x{k}x{n} at ({i}, {j}): {} vs {want}",
                    c[i * n + j]
                );
            }
        }
    }

    /// Symmetric quantize→dequantize stays within half a quantization step
    /// of the original for every in-range value, and the all-zero edge case
    /// round-trips exactly.
    #[test]
    #[cfg_attr(miri, ignore)]
    fn quantize_round_trip_error_is_bounded(
        len in 1usize..256, scale_exp in -6i32..6, salt in 0u64..1_000,
    ) {
        let spread = 2.0f32.powi(scale_exp);
        let values: Vec<f32> = fill(len, salt).iter().map(|v| v * 2.0 * spread).collect();
        let scale = symmetric_scale(&values);
        let max_abs = values.iter().fold(0.0f32, |m, v| m.max(v.abs()));
        if max_abs > 0.0 {
            prop_assert!((scale - max_abs / 127.0).abs() <= f32::EPSILON * max_abs.max(1.0));
        }
        let q = quantize(&values, scale);
        let back = dequantize(&q, scale);
        for (orig, deq) in values.iter().zip(&back) {
            prop_assert!(
                (orig - deq).abs() <= 0.5 * scale * (1.0 + 1e-5),
                "round trip {orig} -> {deq} beyond half-step {scale}"
            );
        }
    }

    /// The transposed-operand kernels agree with materialising the
    /// transpose and calling plain GEMM.
    #[test]
    #[cfg_attr(miri, ignore)]
    fn transposed_kernels_match_materialised_transpose(
        m in 1usize..16, k in 1usize..48, n in 1usize..16, salt in 0u64..1_000,
    ) {
        // TN: A stored [k, m].
        let a_t = fill(k * m, salt);
        let b = fill(k * n, salt ^ 0x1111);
        let mut a = vec![0.0f32; m * k];
        for p in 0..k {
            for i in 0..m {
                a[i * k + p] = a_t[p * m + i];
            }
        }
        let mut via_tn = vec![0.0f32; m * n];
        gemm_tn(m, k, n, &a_t, &b, &mut via_tn);
        let mut direct = vec![0.0f32; m * n];
        gemm(m, k, n, &a, &b, &mut direct);
        prop_assert_eq!(&via_tn, &direct);

        // NT: B stored [n, k].
        let b_t = fill(n * k, salt ^ 0x2222);
        let mut b2 = vec![0.0f32; k * n];
        for j in 0..n {
            for p in 0..k {
                b2[p * n + j] = b_t[j * k + p];
            }
        }
        let mut via_nt = vec![0.0f32; m * n];
        gemm_nt(m, k, n, &a, &b_t, &mut via_nt);
        let mut direct2 = vec![0.0f32; m * n];
        gemm(m, k, n, &a, &b2, &mut direct2);
        prop_assert_eq!(&via_nt, &direct2);
    }

    /// Conv2d's GEMM path agrees with the direct loops — forward outputs to
    /// 1e-5, input gradients to 1e-4, weight gradients to 1e-3 — for random
    /// shapes, kernels and paddings.
    #[test]
    #[cfg_attr(miri, ignore)]
    fn conv_paths_agree(
        n in 1usize..3,
        c in 1usize..4,
        oc in 1usize..4,
        hw in 4usize..10,
        kernel in 1usize..4,
        padding in 0usize..2,
        salt in 0u64..1_000,
    ) {
        prop_assume!(hw + 2 * padding >= kernel);
        let mut rng = StdRng::seed_from_u64(salt);
        let mut direct = Conv2d::new(c, oc, kernel, padding, &mut rng);
        let mut gemm_conv = direct.clone();
        direct.set_kernel_path(KernelPath::Direct);
        gemm_conv.set_kernel_path(KernelPath::Gemm);
        let x = Tensor::from_vec(&[n, c, hw, hw], fill(n * c * hw * hw, salt ^ 0x5A5A));
        let ya = direct.forward(&x, true);
        let yb = gemm_conv.forward(&x, true);
        for (a, b) in ya.as_slice().iter().zip(yb.as_slice()) {
            prop_assert!((a - b).abs() <= 1e-5 * (1.0 + a.abs()), "forward {a} vs {b}");
        }
        let gout = Tensor::from_vec(ya.shape(), fill(ya.len(), salt ^ 0x7777));
        let ga = direct.backward(&gout);
        let gb = gemm_conv.backward(&gout);
        for (a, b) in ga.as_slice().iter().zip(gb.as_slice()) {
            prop_assert!((a - b).abs() <= 1e-4 * (1.0 + a.abs()), "input grad {a} vs {b}");
        }
        for (a, b) in direct.params()[0].grads.iter().zip(gemm_conv.params()[0].grads.iter()) {
            prop_assert!((a - b).abs() <= 1e-3 * (1.0 + a.abs()), "weight grad {a} vs {b}");
        }
    }

    /// Dense forward stays a plain affine map after the GEMM rewrite.
    #[test]
    #[cfg_attr(miri, ignore)]
    fn dense_matches_naive_affine(
        n in 1usize..8, input in 1usize..24, output in 1usize..12, salt in 0u64..1_000,
    ) {
        let mut rng = StdRng::seed_from_u64(salt);
        let mut layer = Dense::new(input, output, &mut rng);
        let x = Tensor::from_vec(&[n, input], fill(n * input, salt ^ 0x33));
        let y = layer.forward(&x, false);
        let mut weight = vec![0.0f32; input * output];
        weight.copy_from_slice(layer.params()[0].values);
        let mut bias = vec![0.0f32; output];
        bias.copy_from_slice(layer.params()[1].values);
        for i in 0..n {
            for j in 0..output {
                let mut want = bias[j];
                for p in 0..input {
                    want += x.as_slice()[i * input + p] * weight[p * output + j];
                }
                let got = y.as_slice()[i * output + j];
                prop_assert!((got - want).abs() <= 1e-5 * (1.0 + want.abs()), "{got} vs {want}");
            }
        }
    }
}

/// Numerical gradient check with the kernel path pinned to im2col + GEMM
/// (a shape `Auto` may legitimately keep on the direct path).
// Policy: the proptest sweeps above and this 48-shape gradient check take
// minutes under the miri interpreter for no extra UB coverage; the plain
// determinism tests exercise the same kernels under miri.
#[test]
#[cfg_attr(miri, ignore)]
fn gemm_conv_gradients_match_numeric_on_large_shape() {
    let mut rng = StdRng::seed_from_u64(41);
    let mut conv = Conv2d::new(3, 4, 3, 1, &mut rng);
    conv.set_kernel_path(KernelPath::Gemm);
    let x = Tensor::from_vec(&[2, 3, 12, 12], fill(2 * 3 * 144, 97));

    let y = conv.forward(&x, true);
    let gout = Tensor::from_vec(y.shape(), vec![1.0; y.len()]);
    let gx = conv.backward(&gout);

    let eps = 1e-2f32;
    let loss = |c: &mut Conv2d, x: &Tensor| -> f32 { c.forward(x, false).as_slice().iter().sum() };
    for &idx in &[0usize, 13, 57, 100] {
        let base = conv.params()[0].values[idx];
        conv.params()[0].values[idx] = base + eps;
        let lp = loss(&mut conv, &x);
        conv.params()[0].values[idx] = base - eps;
        let lm = loss(&mut conv, &x);
        conv.params()[0].values[idx] = base;
        let numeric = (lp - lm) / (2.0 * eps);
        let analytic = conv.params()[0].grads[idx];
        assert!(
            (numeric - analytic).abs() < 0.05 * analytic.abs().max(1.0),
            "w[{idx}]: numeric {numeric} vs analytic {analytic}"
        );
    }
    for &idx in &[5usize, 200, 601] {
        let mut x2 = x.clone();
        let base = x2.as_slice()[idx];
        x2.as_mut_slice()[idx] = base + eps;
        let lp = loss(&mut conv, &x2);
        x2.as_mut_slice()[idx] = base - eps;
        let lm = loss(&mut conv, &x2);
        let numeric = (lp - lm) / (2.0 * eps);
        assert!(
            (numeric - gx.as_slice()[idx]).abs() < 0.05 * numeric.abs().max(1.0),
            "x[{idx}]: numeric {numeric} vs analytic {}",
            gx.as_slice()[idx]
        );
    }
}
