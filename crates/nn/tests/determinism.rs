//! `MVML_THREADS` must never change numbers: every parallel kernel in this
//! crate partitions work without altering accumulation order, so any thread
//! count produces bitwise-identical results on a fixed seed.

use mvml_nn::gemm::gemm;
use mvml_nn::metrics::evaluate_accuracy;
use mvml_nn::models::lenet_mini;
use mvml_nn::parallel::with_thread_count;
use mvml_nn::signs::{generate, SignConfig};
use mvml_nn::train::{train_classifier, TrainConfig};

// Policy: full training runs are far too slow for the miri interpreter; the
// thread-pool determinism property itself stays covered under miri by the
// (shrunken) GEMM test below.
#[test]
#[cfg_attr(miri, ignore)]
fn training_is_bitwise_identical_across_thread_counts() {
    let cfg = SignConfig {
        classes: 4,
        noise_std: 0.05,
        ..SignConfig::default()
    };
    let train = generate(&cfg, 80, 5);
    let tc = TrainConfig {
        epochs: 2,
        batch_size: 16,
        ..TrainConfig::default()
    };
    let run = || {
        let mut model = lenet_mini(cfg.image_size, cfg.classes, 11);
        let report = train_classifier(&mut model, &train, &tc);
        (model.snapshot(), report.epoch_losses)
    };
    let (weights_1, losses_1) = with_thread_count(1, run);
    for threads in [2, 4] {
        let (weights_n, losses_n) = with_thread_count(threads, run);
        assert_eq!(
            losses_1, losses_n,
            "epoch losses differ at {threads} threads"
        );
        assert_eq!(weights_1, weights_n, "weights differ at {threads} threads");
    }
}

#[test]
#[cfg_attr(miri, ignore)]
fn inference_is_bitwise_identical_across_thread_counts() {
    let cfg = SignConfig {
        classes: 4,
        noise_std: 0.05,
        ..SignConfig::default()
    };
    let train = generate(&cfg, 60, 3);
    let test = generate(&cfg, 24, 4);
    let tc = TrainConfig {
        epochs: 1,
        batch_size: 16,
        ..TrainConfig::default()
    };
    let mut model = lenet_mini(cfg.image_size, cfg.classes, 9);
    let _ = train_classifier(&mut model, &train, &tc);
    let acc_1 = with_thread_count(1, || evaluate_accuracy(&mut model, &test, 8));
    for threads in [3, 4] {
        let acc_n = with_thread_count(threads, || evaluate_accuracy(&mut model, &test, 8));
        assert_eq!(
            acc_1.to_bits(),
            acc_n.to_bits(),
            "accuracy differs at {threads} threads"
        );
    }
}

#[test]
fn large_gemm_is_bitwise_identical_across_thread_counts() {
    // Big enough to clear the parallel-dispatch threshold (2*m*k*n flops);
    // under miri the smallest shape past the threshold keeps the interpreter
    // run tractable while still exercising the scoped-thread partitioning.
    let (m, k, n) = if cfg!(miri) {
        (64, 64, 32)
    } else {
        (128, 96, 64)
    };
    let a: Vec<f32> = (0..m * k)
        .map(|i| ((i * 31) % 101) as f32 / 101.0 - 0.5)
        .collect();
    let b: Vec<f32> = (0..k * n)
        .map(|i| ((i * 17) % 97) as f32 / 97.0 - 0.5)
        .collect();
    let mut serial = vec![0.0f32; m * n];
    with_thread_count(1, || gemm(m, k, n, &a, &b, &mut serial));
    for threads in [2, 5, 8] {
        let mut parallel = vec![0.0f32; m * n];
        with_thread_count(threads, || gemm(m, k, n, &a, &b, &mut parallel));
        assert!(
            serial
                .iter()
                .zip(&parallel)
                .all(|(x, y)| x.to_bits() == y.to_bits()),
            "gemm output differs at {threads} threads"
        );
    }
}
