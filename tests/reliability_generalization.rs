//! Validation of the arbitrary-n reliability generalization.
//!
//! Three layers of evidence that [`StateReliability`] is a faithful
//! extension of the paper's closed forms:
//!
//! 1. **Parity** — at every state with ≤ 3 functional modules the generic
//!    model reproduces the hand-derived Eqs. 4–5 to ≤ 1e-12, across a dense
//!    deterministic (p, p', α) grid and a property-based random sweep.
//! 2. **Monotonicity** — the structural properties a majority-vote model
//!    must have: swapping a healthy module for a compromised one never
//!    raises reliability within the mixed regime, and adding a tie-breaking
//!    module to an even ensemble never hurts (for error probabilities below
//!    the classical 1/3 crossover).
//! 3. **Simulation cross-check** — at n = 5, where no closed form exists,
//!    the analytic steady-state reliability agrees with an independent
//!    discrete-event simulation within its batch-means confidence interval.

use proptest::prelude::*;
use resilient_perception::mvml::dspn::{
    expected_system_reliability_with_info, with_proactive, SolveOptions,
};
use resilient_perception::mvml::reliability::state_reliability;
use resilient_perception::mvml::{StateReliability, SystemParams, SystemState};
use resilient_perception::petri::{simulate, ExpectedReward, SimConfig};

/// Every functional-module split the paper derives a closed form for.
const PAPER_STATES: [(usize, usize); 9] = [
    (1, 0),
    (0, 1),
    (2, 0),
    (1, 1),
    (0, 2),
    (3, 0),
    (2, 1),
    (1, 2),
    (0, 3),
];

fn grid(lo: f64, hi: f64, steps: usize) -> impl Iterator<Item = f64> {
    (0..steps).map(move |i| lo + (hi - lo) * i as f64 / (steps - 1) as f64)
}

#[test]
fn generic_model_matches_closed_forms_on_grid() {
    // The closed forms are plain polynomials in (p, p', α); parity must
    // hold over the whole unit cube, not just the validated paper region.
    for p in grid(0.0, 1.0, 9) {
        for p_prime in grid(0.0, 1.0, 9) {
            for alpha in grid(0.0, 1.0, 9) {
                let params = SystemParams {
                    p,
                    p_prime,
                    alpha,
                    ..SystemParams::paper_table_iv()
                };
                let model = StateReliability::from_probabilities(p, p_prime, alpha);
                for (h, c) in PAPER_STATES {
                    let oracle = state_reliability(h, c, &params);
                    // Outside the validated region a closed form may leave
                    // [0, 1]; the generic model clamps, so compare there
                    // only when the oracle itself is a probability.
                    if !(0.0..=1.0).contains(&oracle) {
                        continue;
                    }
                    let generic = model.reliability(h, c);
                    assert!(
                        (oracle - generic).abs() <= 1e-12,
                        "({h},{c}) @ p={p} p'={p_prime} α={alpha}: \
                         oracle {oracle} vs generic {generic}"
                    );
                }
            }
        }
    }
}

proptest! {
    /// Random-sweep version of the parity grid.
    #[test]
    fn generic_model_matches_closed_forms_randomly(
        p in 0.0f64..=1.0,
        p_prime in 0.0f64..=1.0,
        alpha in 0.0f64..=1.0,
    ) {
        let params = SystemParams {
            p,
            p_prime,
            alpha,
            ..SystemParams::paper_table_iv()
        };
        let model = StateReliability::from_probabilities(p, p_prime, alpha);
        for (h, c) in PAPER_STATES {
            let oracle = state_reliability(h, c, &params);
            if (0.0..=1.0).contains(&oracle) {
                let generic = model.reliability(h, c);
                prop_assert!(
                    (oracle - generic).abs() <= 1e-12,
                    "({},{}) oracle {} vs generic {}", h, c, oracle, generic
                );
            }
        }
    }

    /// Within the mixed regime, compromising one more module (h, c) →
    /// (h−1, c+1) never raises reliability. The paper's own forms are not
    /// monotone *across* the regime boundary (R_{0,3,0} > R_{1,2,0}: three
    /// agreeing compromised modules out-vote correlated errors), so the
    /// property is asserted exactly where it holds: both states mixed.
    #[test]
    fn more_compromised_modules_never_help_in_mixed_states(
        n in 3usize..=12,
        h_seed in 0usize..12,
        p in 0.001f64..0.35,
        extra in 0.0f64..0.2,
        alpha in 0.0f64..=1.0,
    ) {
        let h = 2 + h_seed % (n - 2); // h in 2..n, so (h-1, c+1) stays mixed
        let c = n - h;
        prop_assume!(c >= 1);
        let p_prime = (p + extra).min(0.35);
        let model = StateReliability::from_probabilities(p, p_prime, alpha);
        prop_assert!(
            model.reliability(h, c) >= model.reliability(h - 1, c + 1) - 1e-12,
            "R({},{}) < R({},{})", h, c, h - 1, c + 1
        );
    }

    /// Adding the tie-breaking (2k+1)-th healthy module never hurts below
    /// the classical 1/3 error-probability crossover (at q = 1/3 the
    /// three-version and two-version failure rates coincide; beyond it
    /// redundancy backfires, as for classical TMR).
    #[test]
    fn odd_ensembles_beat_even_ones(
        k in 1usize..=7,
        q in 0.001f64..0.33,
        alpha in 0.0f64..=1.0,
    ) {
        let model = StateReliability::from_probabilities(q, q, alpha);
        prop_assert!(
            model.reliability(2 * k + 1, 0) >= model.reliability(2 * k, 0) - 1e-12,
            "R({},0) < R({},0) at q={} α={}", 2 * k + 1, 2 * k, q, alpha
        );
        // Same statement on the compromised side.
        let model = StateReliability::from_probabilities(q / 2.0, q, alpha);
        prop_assert!(
            model.reliability(0, 2 * k + 1) >= model.reliability(0, 2 * k) - 1e-12
        );
    }

    /// The generic model always yields probabilities, for any module split
    /// up to the construction limit and error probabilities through the
    /// mixed-regime validity range.
    #[test]
    fn generic_reliability_is_a_probability(
        n in 1usize..=16,
        h_seed in 0usize..=16,
        p in 0.0f64..0.35,
        extra in 0.0f64..0.2,
        alpha in 0.0f64..=1.0,
    ) {
        let h = h_seed % (n + 1);
        let model = StateReliability::from_probabilities(p, (p + extra).min(0.35), alpha);
        let r = model.reliability(h, n - h);
        prop_assert!((0.0..=1.0).contains(&r), "R({},{}) = {}", h, n - h, r);
    }
}

/// The generalized analytic path validated where no closed form exists:
/// a five-version proactive system solved analytically (Erlang-expanded
/// CTMC) against an independent DES run, compared within the simulation's
/// 99.7% batch-means confidence half-width.
#[test]
fn five_version_analytic_agrees_with_simulation() {
    let params = SystemParams::paper_table_iv();
    let opts = SolveOptions {
        erlang_k: 16,
        ..SolveOptions::default()
    };
    let (analytic, info) = expected_system_reliability_with_info(5, true, &params, &opts).unwrap();
    assert!(info.residual < 1e-6, "solver residual {}", info.residual);

    let mv = with_proactive(5, &params).unwrap();
    let sim = simulate(
        &mv.net,
        &SimConfig {
            horizon: 2_000_000.0,
            warmup: 10_000.0,
            seed: 7,
            ..SimConfig::default()
        },
    )
    .unwrap();
    let model = StateReliability::new(&params);
    let (pmh, pmc, pmf, pmr) = (mv.pmh, mv.pmc, mv.pmf, mv.pmr.unwrap());
    let reward = |m: &resilient_perception::petri::Marking| {
        model.reliability_of(SystemState::new(
            m[pmh] as usize,
            m[pmc] as usize,
            (m[pmf] + m[pmr]) as usize,
        ))
    };
    let (est, half_width) = sim.reward_ci(reward, 3.0);
    assert!(
        (analytic - est).abs() <= half_width,
        "analytic {analytic} vs sim {est} ± {half_width}"
    );
    // And the point estimate is self-consistent with the full-run average.
    let full = sim.expected_reward(reward);
    assert!(
        (full - est).abs() < 1e-6,
        "batch mean {est} vs overall {full}"
    );
}
