//! Cross-checks between the structural analyzer and the reachability
//! explorer on the paper's nets.
//!
//! The reactive model's single P-invariant `Pmh + Pmc + Pmf = n` implies
//! exactly `C(n+2, 2)` feasible markings — the `(i, j, k)` system states
//! that index the paper's Table III reliabilities — and the explorer must
//! find exactly those and never exceed the structural bound. The proactive
//! model is not fully covered (no certificate for `Pac`), so there the
//! check is conservation: every marking the explorer visits satisfies every
//! P-invariant of the (Erlang-expanded) net.

use mvml_core::dspn::{reactive_only, with_proactive};
use mvml_core::SystemParams;
use mvml_petri::analysis::p_invariants;
use mvml_petri::erlang_expand;
use mvml_petri::reach::{explore, ReachOptions};

/// Number of `(i, j, k)` states with `i + j + k = n`: `C(n+2, 2)`.
fn module_states(n: u64) -> u64 {
    (n + 1) * (n + 2) / 2
}

#[test]
fn reactive_invariant_bound_implies_table_iii_state_counts() {
    let params = SystemParams::paper_table_iv();
    for n in 2..=6u32 {
        let mv = reactive_only(n, &params).unwrap();
        let report = mv.net.analyze();
        assert!(report.is_certified(), "n={n}: {report}");
        assert!(report.is_structurally_bounded(), "n={n}");
        // One conservation law bounds every module place at n tokens…
        for (place, bound) in report.place_names.iter().zip(&report.place_bounds) {
            assert_eq!(*bound, Some(u64::from(n)), "n={n}, place {place}");
        }
        // …and pins the feasible space to the Table III state count.
        assert_eq!(report.feasible_markings, Some(module_states(u64::from(n))));

        let graph = explore(&mv.net, &ReachOptions::default()).unwrap();
        let reached = graph.state_count() as u64;
        let bound = report.feasible_markings.unwrap();
        assert!(reached <= bound, "n={n}: reach {reached} > bound {bound}");
        // For this net the bound is tight: every feasible marking is
        // reachable from (n, 0, 0).
        assert_eq!(reached, bound, "n={n}");
    }
}

#[test]
fn proactive_exploration_conserves_every_invariant() {
    let params = SystemParams::paper_table_iv();
    for n in 2..=4u32 {
        let mv = with_proactive(n, &params).unwrap();
        let expanded = erlang_expand(&mv.net, 8).unwrap();
        let invariants = p_invariants(&expanded);
        assert!(!invariants.is_empty(), "n={n}");

        let graph = explore(&expanded, &ReachOptions::default()).unwrap();
        assert!(graph.state_count() > 0);
        for m in &graph.markings {
            for inv in &invariants {
                assert_eq!(
                    inv.weighted_sum(m),
                    inv.token_sum,
                    "n={n}: marking {m} breaks a conservation law"
                );
            }
        }
    }
}

#[test]
fn proactive_module_conservation_law_has_token_sum_n() {
    let params = SystemParams::paper_table_iv();
    for n in 2..=6u32 {
        let mv = with_proactive(n, &params).unwrap();
        let report = mv.net.analyze();
        let module_law = report
            .p_invariants
            .iter()
            .find(|inv| inv.covers(mv.pmh.index()))
            .expect("module conservation law");
        assert_eq!(module_law.token_sum, u64::from(n), "n={n}");
        // The clock law Prc + Ptr = 1 must also be found.
        assert!(report
            .p_invariants
            .iter()
            .any(|inv| inv.token_sum == 1 && !inv.covers(mv.pmh.index())));
    }
}
