//! Property-based tests over the core invariants of every subsystem.

use proptest::prelude::*;
use resilient_perception::mvml::reliability::{enumerate_states, reliability_of};
use resilient_perception::mvml::{vote_majority, SystemParams, Verdict};
use resilient_perception::petri::{steady_state, ExpectedReward, NetBuilder};

proptest! {
    /// Any valid calibration yields per-state reliabilities in [0, 1] that
    /// never exceed 1 − something: sanity of Eqs. 4–5 over the whole
    /// boundary-constrained parameter space.
    #[test]
    fn reliabilities_are_probabilities(
        p in 0.0f64..0.3,
        extra in 0.0f64..0.5,
        alpha in 0.0f64..=1.0,
    ) {
        let params = SystemParams {
            p,
            p_prime: (p + extra).min(1.0),
            alpha,
            ..SystemParams::paper_table_iv()
        };
        prop_assume!(params.validate().is_ok());
        for n in 1..=3usize {
            for s in enumerate_states(n) {
                let r = reliability_of(s, &params);
                prop_assert!((0.0..=1.0).contains(&r), "R{s} = {r}");
            }
        }
    }

    /// Lower error dependency never hurts a redundant configuration.
    #[test]
    fn alpha_monotonicity(
        p in 0.01f64..0.2,
        extra in 0.01f64..0.3,
        a1 in 0.05f64..0.95,
        delta in 0.01f64..0.05,
    ) {
        let mk = |alpha: f64| SystemParams {
            p,
            p_prime: (p + extra).min(1.0),
            alpha,
            ..SystemParams::paper_table_iv()
        };
        let lo = mk(a1);
        let hi = mk(a1 + delta);
        prop_assume!(lo.validate().is_ok() && hi.validate().is_ok());
        use resilient_perception::mvml::reliability::state_reliability;
        prop_assert!(state_reliability(2, 0, &lo) >= state_reliability(2, 0, &hi));
        prop_assert!(state_reliability(3, 0, &lo) >= state_reliability(3, 0, &hi));
    }

    /// The majority voter is invariant under permutation of proposals, and
    /// its output (when any) is always one of the proposals.
    #[test]
    fn voter_permutation_invariance(
        proposals in proptest::collection::vec(proptest::option::of(0u8..5), 1..6),
        rotation in 0usize..6,
    ) {
        let baseline = vote_majority(&proposals);
        let mut rotated = proposals.clone();
        rotated.rotate_left(rotation % proposals.len().max(1));
        prop_assert_eq!(&vote_majority(&rotated), &baseline);
        if let Verdict::Output(v) = baseline {
            prop_assert!(proposals.contains(&Some(v)));
        }
    }

    /// A majority of identical proposals always wins, regardless of what
    /// the remaining modules emit.
    #[test]
    fn voter_majority_always_wins(
        winner in 0u8..5,
        noise in proptest::collection::vec(proptest::option::of(0u8..5), 0..2),
    ) {
        let mut proposals = vec![Some(winner), Some(winner)];
        proposals.extend(noise);
        // 2 agreeing out of ≤4 total with ≥... ensure strict majority:
        prop_assume!(proposals.len() <= 3);
        prop_assert_eq!(vote_majority(&proposals), Verdict::Output(winner));
    }

    /// Steady-state distributions of random ergodic birth–death nets sum to
    /// one, are non-negative, and match the closed-form ratio.
    #[test]
    fn birth_death_steady_state(
        lambda in 0.05f64..5.0,
        mu in 0.05f64..5.0,
        capacity in 1u32..8,
    ) {
        let mut b = NetBuilder::new("bd");
        let free = b.place("free", capacity);
        let busy = b.place("busy", 0);
        let birth = b.exponential("birth", lambda);
        let death = b.exponential("death", mu);
        b.input_arc(free, birth, 1).unwrap();
        b.output_arc(birth, busy, 1).unwrap();
        b.input_arc(busy, death, 1).unwrap();
        b.output_arc(death, free, 1).unwrap();
        let net = b.build().unwrap();
        let ss = steady_state(&net).unwrap();
        let total: f64 = ss.iter().map(|(_, p)| p).sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
        prop_assert!(ss.iter().all(|(_, p)| p >= 0.0));
        // closed form: π_{i+1}/π_i = λ/μ
        let rho = lambda / mu;
        for i in 0..capacity {
            let pi = ss.probability(|m| m[busy] == i);
            let pj = ss.probability(|m| m[busy] == i + 1);
            prop_assert!((pj - rho * pi).abs() < 1e-8, "ratio violated at {i}: {pj} vs {}", rho * pi);
        }
    }

    /// Expected reliability (Eq. 3) of any distribution over reachable
    /// states stays within the convex hull of the per-state values.
    #[test]
    fn expected_reliability_is_convex_combination(
        weights in proptest::collection::vec(0.0f64..1.0, 10),
    ) {
        let params = SystemParams::paper_table_iv();
        let states = enumerate_states(3);
        let total: f64 = weights.iter().sum();
        prop_assume!(total > 1e-9);
        let dist: Vec<_> = states
            .iter()
            .zip(&weights)
            .map(|(s, w)| (*s, w / total))
            .collect();
        let e = resilient_perception::mvml::expected_reliability(dist.clone(), &params);
        let lo = dist.iter().map(|(s, _)| reliability_of(*s, &params)).fold(f64::INFINITY, f64::min);
        let hi = dist.iter().map(|(s, _)| reliability_of(*s, &params)).fold(0.0, f64::max);
        prop_assert!(e >= lo - 1e-12 && e <= hi + 1e-12);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The DES simulator and the exact CTMC solver agree on random two-state
    /// availability models (slow test — few cases).
    #[test]
    fn simulator_matches_solver(fail in 0.05f64..1.0, repair in 0.05f64..1.0, seed in 0u64..1000) {
        use resilient_perception::petri::{simulate, SimConfig};
        let mut b = NetBuilder::new("avail");
        let up = b.place("up", 1);
        let down = b.place("down", 0);
        let f = b.exponential("fail", fail);
        let r = b.exponential("repair", repair);
        b.input_arc(up, f, 1).unwrap();
        b.output_arc(f, down, 1).unwrap();
        b.input_arc(down, r, 1).unwrap();
        b.output_arc(r, up, 1).unwrap();
        let net = b.build().unwrap();
        let exact = steady_state(&net).unwrap().probability(|m| m[up] == 1);
        let sim = simulate(
            &net,
            &SimConfig { horizon: 60_000.0, warmup: 500.0, seed, ..SimConfig::default() },
        )
        .unwrap();
        let est = sim.probability(|m| m[up] == 1);
        prop_assert!((est - exact).abs() < 0.05, "sim {est} vs exact {exact}");
    }
}
