//! End-to-end pipeline test across `nn` → `faultinject` → `core` → `petri`:
//! train diverse models, inject faults, calibrate `p`/`p'`/`α` from measured
//! error sets, and solve the DSPN models with the calibrated parameters —
//! the complete Section VI methodology at test scale.

use resilient_perception::faultinject::search_compromise_seed;
use resilient_perception::mvml::analysis::table_v;
use resilient_perception::mvml::dspn::SolveOptions;
use resilient_perception::mvml::reliability::state_reliability;
use resilient_perception::mvml::{NVersionSystem, SystemParams};
use resilient_perception::nn::metrics::{alpha_mean, error_set};
use resilient_perception::nn::models::three_versions;
use resilient_perception::nn::signs::{generate, SignConfig};
use resilient_perception::nn::train::{train_classifier, TrainConfig};

#[test]
fn calibrate_and_solve_end_to_end() {
    // Small but non-trivial: 10 classes, 3 diverse models.
    let sign = SignConfig {
        classes: 10,
        ..SignConfig::default()
    };
    let train = generate(&sign, 600, 7);
    let test = generate(&sign, 200, 8);
    let tc = TrainConfig {
        epochs: 10,
        batch_size: 64,
        lr: 0.06,
        lr_decay: 0.93,
        ..TrainConfig::default()
    };

    let mut models = three_versions(sign.image_size, sign.classes, 38);
    let mut healthy = Vec::new();
    let mut compromised = Vec::new();
    let mut error_sets = Vec::new();
    for model in &mut models {
        let _ = train_classifier(model, &train, &tc);
        let errors = error_set(model, &test, 64);
        let acc = 1.0 - errors.iter().filter(|&&e| e).count() as f64 / errors.len() as f64;
        assert!(acc > 0.55, "{} failed to learn: {acc}", model.model_name());
        // Cap the band strictly below the healthy accuracy so the selected
        // seed is guaranteed to be a real compromise, whatever RNG stream
        // the weight-fault search walks.
        let found = search_compromise_seed(model, 0, -10.0, 30.0, 0.10, acc - 0.02, 200, |m| {
            let e = error_set(m, &test, 64);
            1.0 - e.iter().filter(|&&x| x).count() as f64 / e.len() as f64
        })
        .expect("no compromising seed");
        assert!(found.accuracy < acc, "fault must reduce accuracy");
        healthy.push(acc);
        compromised.push(found.accuracy);
        error_sets.push(errors);
    }

    // Calibrated parameters must be structurally valid…
    let p = 1.0 - healthy.iter().sum::<f64>() / 3.0;
    let p_prime = (1.0 - compromised.iter().sum::<f64>() / 3.0).max(p + 1e-6);
    let alpha = alpha_mean(&error_sets).clamp(1e-6, 1.0);
    let params = SystemParams {
        p,
        p_prime,
        alpha,
        ..SystemParams::paper_table_iv()
    };
    params.validate().expect("calibrated params valid");

    // …and produce a Table V with the paper's qualitative structure.
    let opts = SolveOptions {
        erlang_k: 8,
        ..SolveOptions::default()
    };
    let table = table_v(&params, &opts).expect("DSPN solution");
    for (n, row) in table.iter().enumerate() {
        assert!(
            row[1] > row[0],
            "rejuvenation must help ({}v: {:?})",
            n + 1,
            row
        );
        for v in row {
            assert!((0.0..=1.0).contains(v));
        }
    }
    assert!(table[1][0] > table[0][0], "2v must beat 1v");
}

#[test]
fn forced_state_empirical_vote_tracks_formula_ordering() {
    // Train a small system, force (3,0,0) vs (1,2,0) vs (0,1,2) states and
    // check the measured voting reliability follows the formula ordering.
    let sign = SignConfig {
        classes: 8,
        ..SignConfig::default()
    };
    let train = generate(&sign, 480, 1);
    let test = generate(&sign, 160, 2);
    let tc = TrainConfig {
        epochs: 10,
        batch_size: 64,
        lr: 0.06,
        lr_decay: 0.93,
        ..TrainConfig::default()
    };
    let mut models = three_versions(sign.image_size, sign.classes, 38);
    for m in &mut models {
        let _ = train_classifier(m, &train, &tc);
    }
    let mut system = NVersionSystem::new(models);

    // All healthy.
    let r_healthy = system.evaluate(&test, 64).reliability();

    // Two modules compromised with strong faults. Majority voting can mask
    // (or, on a small test set, even accidentally flip) individual faults,
    // so the guaranteed observable is a behaviour change of the module
    // outputs, not a strict system-reliability ordering.
    let (x_all, _) = test.batch(&(0..test.len()).collect::<Vec<_>>());
    let healthy_votes = system.classify_batch(&x_all);
    system.module_mut(0).compromise(0, 50.0, 200.0, 11);
    system.module_mut(1).compromise(0, 50.0, 200.0, 12);
    let compromised_votes = system.classify_batch(&x_all);
    assert_ne!(
        healthy_votes, compromised_votes,
        "two strong weight faults must change at least one voted output"
    );
    let _r_two_bad = system.evaluate(&test, 64).reliability();

    // Rejuvenation restores the healthy reliability exactly (weights equal).
    system.module_mut(0).complete_rejuvenation();
    system.module_mut(1).complete_rejuvenation();
    let r_restored = system.evaluate(&test, 64).reliability();
    assert!((r_restored - r_healthy).abs() < 1e-12);

    // Formula sanity at an arbitrary calibration: same ordering.
    let params = SystemParams {
        p: 0.08,
        p_prime: 0.4,
        alpha: 0.4,
        ..SystemParams::paper_table_iv()
    };
    assert!(state_reliability(3, 0, &params) > state_reliability(1, 2, &params));
}
