//! End-to-end driving-safety pipeline test across `avsim` + `core` +
//! `faultinject`: the Section VII causal chain at test scale — healthy
//! perception drives safely; aggressive fault clocks without proactive
//! rejuvenation degrade safety; proactive rejuvenation restores it.

use resilient_perception::avsim::detector::{train_detector, yolo_mini, DetectorTrainConfig};
use resilient_perception::avsim::runner::{run_route, RunConfig};
use resilient_perception::avsim::town::{all_routes, route};
use resilient_perception::avsim::DetectorBank;
use resilient_perception::mvml::rejuvenation::ProcessConfig;
use resilient_perception::mvml::SystemParams;

/// A moderately trained bank — good enough for near-zero healthy skip rate.
fn bank() -> DetectorBank {
    let cfg = DetectorTrainConfig {
        scenes: 700,
        epochs: 4,
        ..DetectorTrainConfig::default()
    };
    let models = (0..3)
        .map(|i| {
            let mut m = yolo_mini(["s", "m", "l"][i as usize], 4 + 2 * i as usize, i);
            let _ = train_detector(
                &mut m,
                &DetectorTrainConfig {
                    seed: 38 + i,
                    ..cfg
                },
            );
            m
        })
        .collect();
    DetectorBank::from_models(models)
}

fn healthy_process() -> ProcessConfig {
    ProcessConfig {
        params: SystemParams {
            mttc: 1e12,
            mttf: 1e12,
            ..SystemParams::carla_case_study()
        },
        proactive: false,
        compromised_priority: 2.0 / 3.0,
        proportional_selection: false,
        per_module_clocks: true,
    }
}

#[test]
fn healthy_perception_is_safe_on_every_route() {
    let bank = bank();
    for r in all_routes() {
        let mut cfg = RunConfig::case_study(false, 40 + r.id as u64);
        cfg.process = healthy_process();
        let m = run_route(&r, &bank, &cfg);
        assert_eq!(
            m.collision_frames, 0,
            "route {} collided with healthy perception: {m:?}",
            r.id
        );
        assert!(
            m.skip_ratio() < 0.10,
            "route {} skipped {:.1}% of frames while healthy",
            r.id,
            100.0 * m.skip_ratio()
        );
    }
}

#[test]
fn rejuvenation_reduces_collisions_under_attack() {
    let bank = bank();
    let r = route(1).expect("route 1");
    let seeds: Vec<u64> = (0..6).collect();
    let collisions = |proactive: bool| -> usize {
        seeds
            .iter()
            .filter(|&&s| {
                let cfg = RunConfig::case_study(proactive, 0xBEEF + s);
                run_route(&r, &bank, &cfg).first_collision.is_some()
            })
            .count()
    };
    let with_rej = collisions(true);
    let without = collisions(false);
    assert!(
        with_rej <= without,
        "rejuvenation must not increase collisions ({with_rej} vs {without})"
    );
    assert!(
        without >= 1,
        "unprotected runs should collide at least once in 6 seeds"
    );
}

#[test]
fn degraded_module_states_follow_the_process() {
    use resilient_perception::avsim::perception::{MultiVersionPerception, PerceptionConfig};
    use resilient_perception::mvml::ModuleState;
    let bank = bank();
    let mut p = MultiVersionPerception::new(
        &bank,
        PerceptionConfig::default(),
        ProcessConfig::carla(false),
        3,
    );
    // After a long advance with CARLA clocks (mttc 8 s) most modules will
    // have left the healthy state at least once.
    let events = p.advance(40.0);
    assert!(!events.is_empty());
    assert_eq!(p.states().len(), 3);
    // States must be legal enum values and the perception still answers.
    let grid = resilient_perception::nn::Tensor::zeros(&[1, 1, 32, 32]);
    let frame = p.perceive(&grid);
    assert_eq!(frame.states.len(), 3);
    for s in frame.states {
        let _ = matches!(
            s,
            ModuleState::Healthy
                | ModuleState::Compromised
                | ModuleState::NonFunctional
                | ModuleState::Rejuvenating
        );
    }
}
