//! Integration tests pinning the reproduction to the paper's published
//! numbers: Table III (exact formula evaluation) and Table V (DSPN steady
//! state), plus the qualitative claims of Section VI-C.

use resilient_perception::mvml::analysis::{linspace, sweep, SweepVariable};
use resilient_perception::mvml::dspn::{expected_system_reliability, SolveOptions};
use resilient_perception::mvml::reliability::{reliability_of, SystemState};
use resilient_perception::mvml::SystemParams;

fn opts() -> SolveOptions {
    SolveOptions {
        erlang_k: 32,
        ..SolveOptions::default()
    }
}

#[test]
fn table_iii_reproduced_exactly() {
    let params = SystemParams::paper_table_iv();
    let expected = [
        ((3, 0, 0), 0.988626295),
        ((2, 0, 1), 0.976732729),
        ((2, 1, 0), 0.881542506),
        ((1, 0, 2), 0.937107416),
        ((1, 1, 1), 0.943896878),
        ((1, 2, 0), 0.815870804),
        ((0, 3, 0), 0.926682718),
        ((0, 2, 1), 0.911061026),
        ((0, 1, 2), 0.759593560),
    ];
    for ((i, j, k), value) in expected {
        let got = reliability_of(SystemState::new(i, j, k), &params);
        assert!(
            (got - value).abs() < 2e-5,
            "R({i},{j},{k}) = {got} vs paper {value}"
        );
    }
}

#[test]
fn table_v_reproduced_within_tolerance() {
    let params = SystemParams::paper_table_iv();
    let paper = [
        (1u32, false, 0.848211),
        (1, true, 0.920217),
        (2, false, 0.943875),
        (2, true, 0.967152),
        (3, false, 0.903190),
        (3, true, 0.952998),
    ];
    for (n, proactive, value) in paper {
        let got = expected_system_reliability(n, proactive, &params, &opts()).unwrap();
        let tol = if proactive { 5e-3 } else { 5e-5 };
        assert!(
            (got - value).abs() < tol,
            "{n}v proactive={proactive}: {got} vs paper {value}"
        );
    }
}

#[test]
fn section_vi_c_crossovers() {
    // "a single-version system adopting rejuvenation performs better than a
    //  three-version system without rejuvenation when p < 0.10"
    let base = SystemParams::paper_table_iv();
    let rows = sweep(
        SweepVariable::HealthyInaccuracy,
        &linspace(0.01, 0.23, 12),
        &base,
        &opts(),
    )
    .unwrap();
    for row in &rows {
        let single_rej = row.of(1, true);
        let three_norej = row.of(3, false);
        if row.x < 0.08 {
            assert!(single_rej > three_norej, "at p = {}", row.x);
        }
        if row.x > 0.15 {
            assert!(single_rej < three_norej, "at p = {}", row.x);
        }
    }
}

#[test]
fn alpha_sweep_degradations_match_prose() {
    // "The reliability of the two-version and three-version without
    //  rejuvenation drops by about 13% and 26% when varying α from 0.1 to 1."
    let base = SystemParams::paper_table_iv();
    let rows = sweep(SweepVariable::Alpha, &[0.1, 1.0], &base, &opts()).unwrap();
    let drop2 = rows[0].of(2, false) - rows[1].of(2, false);
    let drop3 = rows[0].of(3, false) - rows[1].of(3, false);
    assert!((drop2 - 0.13).abs() < 0.03, "2v drop {drop2}");
    assert!((drop3 - 0.26).abs() < 0.03, "3v drop {drop3}");
}

#[test]
fn p_prime_sweep_matches_prose() {
    // "While the reliability of systems adopting proactive rejuvenation
    //  dropped less than 4%, the negative impact on systems with reactive
    //  rejuvenation was more than 10%. The most harmed configuration …
    //  was the single-version … reliability dropped by 27%."
    let base = SystemParams::paper_table_iv();
    let rows = sweep(
        SweepVariable::CompromisedInaccuracy,
        &[0.1, 0.6],
        &base,
        &opts(),
    )
    .unwrap();
    let drop = |n: u32, rej: bool| rows[0].of(n, rej) - rows[1].of(n, rej);
    for n in 2..=3u32 {
        assert!(
            drop(n, true) < 0.05,
            "{n}v w/ rej dropped {}",
            drop(n, true)
        );
    }
    assert!(
        drop(1, false) > 0.20,
        "1v w/o rej dropped only {}",
        drop(1, false)
    );
    assert!(
        drop(1, false) > drop(2, false) && drop(1, false) > drop(3, false),
        "single-version must be the most harmed"
    );
}

#[test]
fn optimal_parameter_claim() {
    // p=0.01, p'=0.1, α=0.1 → 3v w/ rej ≈ 0.99487778, 2v w/ rej ≈ 0.9963003.
    let params = SystemParams {
        p: 0.01,
        p_prime: 0.1,
        alpha: 0.1,
        ..SystemParams::paper_table_iv()
    };
    let r3 = expected_system_reliability(3, true, &params, &opts()).unwrap();
    let r2 = expected_system_reliability(2, true, &params, &opts()).unwrap();
    assert!((r3 - 0.99487778).abs() < 2e-3, "3v: {r3}");
    assert!((r2 - 0.9963003).abs() < 2e-3, "2v: {r2}");
}
