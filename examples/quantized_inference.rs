//! Int8 quantized inference: post-training-quantize a trained traffic-sign
//! classifier, compare its accuracy and memory footprint against the f32
//! parent, persist it to the "safe memory location", and serve it as one
//! diverse version inside the hardened N-version system.
//!
//! Run with: `cargo run --release --example quantized_inference`
// Demo code: aborting on a broken step is the desired behaviour, so
// unwrap/expect are allowed file-wide.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use resilient_perception::mvml::{NVersionSystem, StateReliability};
use resilient_perception::nn::metrics::evaluate_accuracy;
use resilient_perception::nn::models::{alexnet_mini, lenet_mini};
use resilient_perception::nn::persist::{load_quantized, save_quantized};
use resilient_perception::nn::quant::{quantize_model, QLayer};
use resilient_perception::nn::signs::{generate, SignConfig};
use resilient_perception::nn::train::{train_classifier, TrainConfig};

fn main() {
    // 1. A small traffic-sign problem so the example runs in seconds.
    let sign = SignConfig {
        classes: 8,
        noise_std: 0.08,
        ..SignConfig::default()
    };
    let train = generate(&sign, 600, 0);
    let test = generate(&sign, 200, 1);

    println!("training the f32 parent model…");
    let mut lenet = lenet_mini(sign.image_size, sign.classes, 38);
    let tc = TrainConfig {
        epochs: 6,
        batch_size: 64,
        lr: 0.08,
        ..TrainConfig::default()
    };
    train_classifier(&mut lenet, &train, &tc);
    let f32_accuracy = evaluate_accuracy(&mut lenet, &test, 64);

    // 2. Post-training quantization: per-layer symmetric int8 weights,
    //    dynamic per-tensor activation scales at inference time.
    let quantized = quantize_model(&lenet).expect("lenet_mini uses only quantizable layers");
    println!("\nquantized '{}' layer scales:", quantized.model_name());
    for (i, layer) in quantized.layers().iter().enumerate() {
        match layer {
            QLayer::Conv(c) => {
                println!("  layer {i}: conv2d  weight scale {:.6}", c.weight_scale())
            }
            QLayer::Dense(d) => {
                println!("  layer {i}: dense   weight scale {:.6}", d.weight_scale())
            }
            _ => {}
        }
    }
    let weights: usize = lenet.all_params().iter().map(|p| p.values.len()).sum();
    println!(
        "weights: {weights} parameters, {} KiB as f32 vs {} KiB as int8",
        weights * 4 / 1024,
        weights / 1024
    );

    let mut q_module = quantized.clone().into_module();
    let int8_accuracy = evaluate_accuracy(&mut q_module, &test, 64);
    println!(
        "\ntop-1 accuracy: f32 {f32_accuracy:.3} vs int8 {int8_accuracy:.3} (drop {:+.4})",
        f32_accuracy - int8_accuracy
    );

    // 3. The safe memory location: rejuvenation restores a quantized
    //    version wholesale from disk (no retraining, no re-quantization).
    let path = std::env::temp_dir().join("quantized_lenet.json");
    save_quantized(&quantized, &path).expect("persist quantized weights");
    let restored = load_quantized(&path).expect("reload quantized weights");
    assert_eq!(restored.state(), quantized.state());
    println!("persisted + restored byte-identical int8 weights via {path:?}");
    std::fs::remove_file(&path).ok();

    // 4. Serve the int8 model as one diverse version among f32 peers.
    println!("\ntraining an f32 peer for the mixed-precision 3-version system…");
    let mut alex = alexnet_mini(sign.image_size, sign.classes, 39);
    train_classifier(&mut alex, &train, &tc);
    let mut system = NVersionSystem::new(vec![alex, lenet, restored.into_module()]);
    let report = system.evaluate(&test, 64);
    println!(
        "mixed f32/int8 3-version system: reliability {:.3}, coverage {:.3}",
        report.reliability(),
        report.coverage()
    );

    // 5. Feed the measured accuracy delta into the analytic state model:
    //    the quantized member plays the degraded role with
    //    p' = p + measured drop.
    let drop = (f32_accuracy - int8_accuracy).max(0.0);
    let mixed = StateReliability::from_measured_accuracy(0.05, drop, 0.53);
    let all_f32 = StateReliability::from_probabilities(0.05, 0.05, 0.53);
    println!(
        "analytic reliability, 2 healthy + 1 int8: {:.4} (all-f32 bound {:.4})",
        mixed.reliability(2, 1),
        all_f32.reliability(3, 0)
    );
}
