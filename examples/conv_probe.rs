//! Per-shape direct-vs-GEMM convolution timing (detector inference shapes,
//! LeNet-style training shapes). The `KernelPath::Auto` thresholds in
//! `mvml_nn::layers::Conv2d` were measured with this probe — re-run it when
//! retuning them for a new host.
// Demo code: aborting on a broken step is the desired behaviour, so
// unwrap/expect are allowed file-wide.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use mvml_nn::layers::{Conv2d, KernelPath};
use mvml_nn::Layer;
use mvml_nn::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

fn median_ns(samples: usize, iters: usize, mut f: impl FnMut()) -> f64 {
    let mut v = Vec::with_capacity(samples);
    for _ in 0..samples {
        let t = Instant::now();
        for _ in 0..iters {
            f();
        }
        v.push(t.elapsed().as_nanos() as f64 / iters as f64);
    }
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    v[v.len() / 2]
}

fn main() {
    let shapes: &[(&str, usize, usize, usize, usize, usize, usize)] = &[
        ("det stem 1->6 k3 32x32 b1", 1, 1, 6, 3, 1, 32),
        ("det mid 6->6 k3 32x32 b1", 1, 6, 6, 3, 1, 32),
        ("det mid 8->8 k3 32x32 b1", 1, 8, 8, 3, 1, 32),
        ("det head 6->1 k1 32x32 b1", 1, 6, 1, 1, 0, 32),
        ("mid batch8 6->6 k3 32x32", 8, 6, 6, 3, 1, 32),
        ("mid batch32 6->6 k3 32x32", 32, 6, 6, 3, 1, 32),
        ("mid batch32 8->8 k3 32x32", 32, 8, 8, 3, 1, 32),
        ("mid batch1 16->16 k3 32x32", 1, 16, 16, 3, 1, 32),
        ("mid batch8 16->16 k3 32x32", 8, 16, 16, 3, 1, 32),
    ];
    for &(label, n, ic, oc, k, pad, hw) in shapes {
        let x = Tensor::from_vec(
            &[n, ic, hw, hw],
            (0..n * ic * hw * hw)
                .map(|i| ((i * 13) % 29) as f32 / 29.0 - 0.5)
                .collect(),
        );
        let time_path = |path: KernelPath| {
            let mut rng = StdRng::seed_from_u64(38);
            let mut conv = Conv2d::new(ic, oc, k, pad, &mut rng);
            conv.set_kernel_path(path);
            median_ns(9, 50, || {
                std::hint::black_box(conv.forward(std::hint::black_box(&x), false));
            })
        };
        let d = time_path(KernelPath::Direct);
        let g = time_path(KernelPath::Gemm);
        println!(
            "{label}: direct {d:.0} ns, gemm {g:.0} ns, speedup {:.2}x",
            d / g
        );
    }
}
