//! The full traffic-sign reliability study in miniature (the paper's
//! Section VI): train three versions, inject faults to obtain compromised
//! versions, calibrate `p`, `p'`, `α` from measured error sets (Eqs. 6–9),
//! evaluate the reliability functions (Table III) and solve the DSPN models
//! for the expected system reliability of all six configurations (Table V).
//!
//! Run with: `cargo run --release --example traffic_sign_reliability`
// Demo code: aborting on a broken step is the desired behaviour, so
// unwrap/expect are allowed file-wide.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use resilient_perception::faultinject::search_compromise_seed;
use resilient_perception::mvml::analysis::{configuration_label, table_v};
use resilient_perception::mvml::dspn::SolveOptions;
use resilient_perception::mvml::reliability::{reliability_of, SystemState};
use resilient_perception::mvml::SystemParams;
use resilient_perception::nn::metrics::{alpha_mean, error_set};
use resilient_perception::nn::models::three_versions;
use resilient_perception::nn::signs::{generate, SignConfig};
use resilient_perception::nn::train::{train_classifier, TrainConfig};

fn main() {
    // --- Phase 1: train and measure (Table II pipeline, reduced size). ---
    let sign = SignConfig {
        classes: 12,
        ..SignConfig::default()
    };
    let train = generate(&sign, sign.classes * 60, 0xA11CE);
    let test = generate(&sign, sign.classes * 30, 0xB0B);
    let tc = TrainConfig {
        epochs: 8,
        batch_size: 128,
        lr: 0.08,
        ..TrainConfig::default()
    };

    println!("phase 1 — training and fault injection");
    let mut models = three_versions(sign.image_size, sign.classes, 38);
    let mut healthy_acc = Vec::new();
    let mut compromised_acc = Vec::new();
    let mut error_sets = Vec::new();
    for model in &mut models {
        let _ = train_classifier(model, &train, &tc);
        let errors = error_set(model, &test, 128);
        let acc = 1.0 - errors.iter().filter(|&&e| e).count() as f64 / errors.len() as f64;
        // Find an injection seed that lands the compromised accuracy well
        // below healthy (the paper's seeds 5/183/34 were found this way).
        let found = search_compromise_seed(model, 0, -10.0, 30.0, 0.30, 0.90, 300, |m| {
            let e = error_set(m, &test, 128);
            1.0 - e.iter().filter(|&&x| x).count() as f64 / e.len() as f64
        })
        .expect("no compromising seed found");
        println!(
            "  {:<14} healthy {:.3}  compromised {:.3} (seed {})",
            model.model_name(),
            acc,
            found.accuracy,
            found.seed
        );
        healthy_acc.push(acc);
        compromised_acc.push(found.accuracy);
        error_sets.push(errors);
    }

    // --- Phase 2: calibrate the reliability-model parameters. ---
    let p = 1.0 - healthy_acc.iter().sum::<f64>() / 3.0;
    let p_prime = 1.0 - compromised_acc.iter().sum::<f64>() / 3.0;
    let alpha = alpha_mean(&error_sets);
    println!("\nphase 2 — calibrated parameters: p = {p:.4}, p' = {p_prime:.4}, α = {alpha:.4}");
    let params = SystemParams {
        p,
        p_prime,
        alpha,
        ..SystemParams::paper_table_iv()
    };
    params.validate().expect("calibrated parameters are valid");

    // --- Phase 3: per-state reliability functions (Table III). ---
    println!("\nphase 3 — reliability functions R_(i,j,k) at the calibrated parameters:");
    for (i, j, k) in [
        (3, 0, 0),
        (2, 0, 1),
        (2, 1, 0),
        (1, 0, 2),
        (1, 1, 1),
        (1, 2, 0),
        (0, 3, 0),
        (0, 2, 1),
        (0, 1, 2),
    ] {
        println!(
            "  R_({i},{j},{k}) = {:.6}",
            reliability_of(SystemState::new(i, j, k), &params)
        );
    }

    // --- Phase 4: DSPN solution (Table V). ---
    println!("\nphase 4 — expected system reliability (DSPN steady state):");
    let opts = SolveOptions {
        erlang_k: 16,
        ..SolveOptions::default()
    };
    let table = table_v(&params, &opts).expect("DSPN solution");
    for n in 1..=3u32 {
        for proactive in [false, true] {
            println!(
                "  {:<26} E[R] = {:.6}",
                configuration_label(n, proactive),
                table[(n - 1) as usize][usize::from(proactive)]
            );
        }
    }
    println!(
        "\nexpected shape: rejuvenation helps every configuration; the two-version\n\
         system (with its safe-skip voter) beats the three-version system."
    );
}
