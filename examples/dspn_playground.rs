//! DSPN playground: build the paper's rejuvenation models directly, inspect
//! their steady states, and compare the exact Erlang-expanded solution with
//! discrete-event simulation — the workflow a modeller would use TimeNET
//! for.
//!
//! Run with: `cargo run --release --example dspn_playground`
// Demo code: aborting on a broken step is the desired behaviour, so
// unwrap/expect are allowed file-wide.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use resilient_perception::mvml::dspn::{reactive_only, with_proactive};
use resilient_perception::mvml::reliability::reliability_of;
use resilient_perception::mvml::{SystemParams, SystemState};
use resilient_perception::petri::{
    erlang_expand, simulate, steady_state, ExpectedReward, SimConfig,
};

fn main() {
    let params = SystemParams::paper_table_iv();

    // --- The Fig. 2 model: three modules, reactive rejuvenation only. ---
    let fig2 = reactive_only(3, &params).expect("Fig. 2 net");
    println!(
        "Fig. 2 net `{}`: {} places, {} transitions",
        fig2.net.name(),
        fig2.net.place_count(),
        fig2.net.transition_count()
    );
    let ss = steady_state(&fig2.net).expect("CTMC solution");
    println!("tangible markings: {}", ss.state_count());
    println!("steady-state distribution over (healthy, compromised, failed):");
    let mut states: Vec<(SystemState, f64)> =
        ss.iter().map(|(m, p)| (fig2.system_state(m), p)).collect();
    states.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite"));
    for (s, prob) in &states {
        if *prob > 1e-6 {
            println!(
                "  π{s} = {prob:.6}   R{s} = {:.6}",
                reliability_of(*s, &params)
            );
        }
    }
    let expected: f64 = states
        .iter()
        .map(|(s, p)| p * reliability_of(*s, &params))
        .sum();
    println!("E[R] (Eq. 3) = {expected:.6}   (paper Table V: 0.903190)\n");

    // --- The Fig. 3 model: proactive clock, Erlang-expanded then solved. ---
    let fig3 = with_proactive(3, &params).expect("Fig. 3 net");
    println!(
        "Fig. 3 net `{}`: {} places, {} transitions (incl. deterministic clock Trc)",
        fig3.net.name(),
        fig3.net.place_count(),
        fig3.net.transition_count()
    );
    for k in [4u32, 16, 64] {
        let expanded = erlang_expand(&fig3.net, k).expect("expansion");
        let ss = steady_state(&expanded).expect("CTMC solution");
        let (pmh, pmc, pmf, pmr) = (fig3.pmh, fig3.pmc, fig3.pmf, fig3.pmr.expect("pmr"));
        let reward = ss.expected_reward(|m| {
            reliability_of(
                SystemState::new(m[pmh] as usize, m[pmc] as usize, (m[pmf] + m[pmr]) as usize),
                &params,
            )
        });
        println!(
            "  Erlang-{k:<3} expansion: {} tangible states, E[R] = {reward:.6}",
            ss.state_count()
        );
    }

    // --- Cross-check by simulation (the paper solved Table V this way). ---
    let sim = simulate(
        &fig3.net,
        &SimConfig {
            horizon: 2_000_000.0,
            warmup: 10_000.0,
            seed: 42,
            ..SimConfig::default()
        },
    )
    .expect("simulation");
    let (pmh, pmc, pmf, pmr) = (fig3.pmh, fig3.pmc, fig3.pmf, fig3.pmr.expect("pmr"));
    let reward = |m: &resilient_perception::petri::Marking| {
        reliability_of(
            SystemState::new(m[pmh] as usize, m[pmc] as usize, (m[pmf] + m[pmr]) as usize),
            &params,
        )
    };
    let (mean, hw) = sim.reward_ci(reward, 1.96);
    println!(
        "\nDES simulation over 2e6 s ({} firings): E[R] = {mean:.6} ± {hw:.6} (95% CI)",
        sim.firings
    );
    println!("paper Table V (three-version w/ rejuvenation): 0.952998");
}
