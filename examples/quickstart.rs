//! Quickstart: assemble a three-version ML system, break a module, watch the
//! voter mask the fault, and rejuvenate the module back to health.
//!
//! Run with: `cargo run --release --example quickstart`
// Demo code: aborting on a broken step is the desired behaviour, so
// unwrap/expect are allowed file-wide.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use resilient_perception::faultinject::search_compromise_seed;
use resilient_perception::mvml::{NVersionSystem, Verdict};
use resilient_perception::nn::metrics::error_set;
use resilient_perception::nn::models::three_versions;
use resilient_perception::nn::signs::{generate, SignConfig};
use resilient_perception::nn::train::{train_classifier, TrainConfig};

fn main() {
    // 1. A small, easy traffic-sign problem so the example runs in seconds.
    let sign = SignConfig {
        classes: 8,
        noise_std: 0.10,
        occlusion_prob: 0.1,
        ..SignConfig::default()
    };
    let train = generate(&sign, 800, 0);
    let test = generate(&sign, 240, 1);

    // 2. Train three architecturally diverse versions (the paper's
    //    AlexNet / ResNet / LeNet roles).
    println!("training three diverse model versions…");
    let mut models = three_versions(sign.image_size, sign.classes, 38);
    let tc = TrainConfig {
        epochs: 8,
        batch_size: 64,
        lr: 0.08,
        ..TrainConfig::default()
    };
    for m in &mut models {
        let report = train_classifier(m, &train, &tc);
        println!(
            "  {:<14} train accuracy {:.3}",
            m.model_name(),
            report.final_train_accuracy
        );
    }

    // 3. Assemble the N-version system (trusted voter, rules R.1–R.3).
    let mut system = NVersionSystem::new(models);
    let healthy = system.evaluate(&test, 64);
    println!(
        "\nall-healthy system:    reliability {:.3}, coverage {:.3}",
        healthy.reliability(),
        healthy.coverage()
    );

    // 4. Compromise one module with a PyTorchFI-style weight fault — like
    //    the paper, search injection seeds until the fault visibly degrades
    //    the module (most single-weight faults are harmless; the paper's
    //    seeds 5/183/34 were found the same way).
    let mut seeds = Vec::new();
    for i in 0..2 {
        let found = search_compromise_seed(
            system.module_mut(i).model_mut(),
            0,
            -10.0,
            30.0,
            0.10,
            0.75,
            400,
            |m| {
                let e = error_set(m, &test, 64);
                1.0 - e.iter().filter(|&&x| x).count() as f64 / e.len() as f64
            },
        )
        .expect("no degrading seed found");
        seeds.push(found);
    }
    system
        .module_mut(0)
        .compromise(0, -10.0, 30.0, seeds[0].seed);
    let one_bad = system.evaluate(&test, 64);
    println!(
        "one compromised module: reliability {:.3} (module at {:.3} accuracy, fault masked by 2-out-of-3 voting)",
        one_bad.reliability(),
        seeds[0].accuracy
    );

    // 5. Compromise a second module — now wrong majorities and skips appear.
    system
        .module_mut(1)
        .compromise(0, -10.0, 30.0, seeds[1].seed);
    let two_bad = system.evaluate(&test, 64);
    println!(
        "two compromised modules: reliability {:.3}, coverage {:.3} ({} safe skips — \
         wrong majorities become skips, trading coverage for safety)",
        two_bad.reliability(),
        two_bad.coverage(),
        two_bad.skipped
    );

    // 6. Rejuvenate: reload pristine weights ("from a safe memory
    //    location"), returning the system to full health.
    system.module_mut(0).complete_rejuvenation();
    system.module_mut(1).complete_rejuvenation();
    let recovered = system.evaluate(&test, 64);
    println!(
        "after rejuvenation:     reliability {:.3}",
        recovered.reliability()
    );

    // 7. Degraded operation: with one module down the voter runs 2-out-of-2
    //    and safely skips on divergence (R.2).
    system.module_mut(2).fail();
    let degraded = system.evaluate(&test, 64);
    println!(
        "one module crashed:     reliability {:.3}, {} safe skips",
        degraded.reliability(),
        degraded.skipped
    );

    // A healthy batch end-to-end, for good measure.
    system.module_mut(2).complete_rejuvenation();
    let idx: Vec<usize> = (0..10).collect();
    let (x, y) = test.batch(&idx);
    let verdicts = system.classify_batch(&x);
    let correct = verdicts
        .iter()
        .zip(&y)
        .filter(|(v, label)| matches!(v, Verdict::Output(c) if c == *label))
        .count();
    println!("\nfirst 10 test samples: {correct}/10 voted correctly");
}
