//! The driving-safety case study in miniature (the paper's Section VII):
//! run route #1 with the three-version perception system, with and without
//! time-triggered proactive rejuvenation, and compare collision metrics.
//!
//! Run with: `cargo run --release --example av_safety`
// Demo code: aborting on a broken step is the desired behaviour, so
// unwrap/expect are allowed file-wide.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use resilient_perception::avsim::detector::{train_detector, yolo_mini, DetectorTrainConfig};
use resilient_perception::avsim::runner::{run_route, RunConfig};
use resilient_perception::avsim::town::route;
use resilient_perception::avsim::DetectorBank;

fn main() {
    // Train a (smallish) detector bank: three YOLO-mini variants learning to
    // spot vehicles in noisy bird's-eye-view grids.
    println!("training the 3-variant detector bank…");
    let cfg = DetectorTrainConfig {
        scenes: 500,
        epochs: 3,
        ..DetectorTrainConfig::default()
    };
    let models = (0..3)
        .map(|i| {
            let mut m = yolo_mini(
                ["yolomini-s", "yolomini-m", "yolomini-l"][i as usize],
                4 + 2 * i as usize,
                i,
            );
            let loss = train_detector(
                &mut m,
                &DetectorTrainConfig {
                    seed: 38 + i,
                    ..cfg
                },
            );
            println!("  {:<11} final BCE loss {loss:.4}", m.model_name());
            m
        })
        .collect();
    let bank = DetectorBank::from_models(models);

    let r1 = route(1).expect("route 1");
    println!(
        "\nroute #1 ({}, {:.0} m, lead vehicle brakes at t=8 s), 3 runs per configuration:",
        r1.town,
        r1.path().length()
    );

    for proactive in [true, false] {
        let label = if proactive {
            "w/  rejuvenation"
        } else {
            "w/o rejuvenation"
        };
        println!("\n{label} (λc=8 s, λ=16 s, μ=μr=0.5 s, γ=3 s):");
        let mut total_collisions = 0;
        for seed in 0..3u64 {
            let cfg = RunConfig::case_study(proactive, 0xD0 + seed);
            let m = run_route(&r1, &bank, &cfg);
            println!(
                "  seed {seed}: {} frames, collision frames {}, first collision {}, skips {:.1}%",
                m.frames,
                m.collision_frames,
                m.first_collision
                    .map_or("NA".to_string(), |f| f.to_string()),
                100.0 * m.skip_ratio()
            );
            if m.first_collision.is_some() {
                total_collisions += 1;
            }
        }
        println!("  runs with a collision: {total_collisions}/3");
    }

    println!(
        "\nexpected shape (paper Table VI): with rejuvenation the system tolerates\n\
         compromised detectors and avoids collisions; without it, compromised\n\
         majorities mislead or stall the voter and the ego rear-ends the lead."
    );
}
