//! # resilient-perception
//!
//! Umbrella crate for the reproduction of *"Multi-version Machine Learning
//! and Rejuvenation for Resilient Perception in Safety-critical Systems"*
//! (DSN 2025). Re-exports the public API of every workspace crate:
//!
//! * [`petri`] — DSPN modelling, CTMC solution, Erlang expansion, simulation.
//! * [`nn`] — neural-network substrate and the synthetic sign dataset.
//! * [`faultinject`] — PyTorchFI-equivalent fault injection.
//! * [`mvml`] — the paper's contribution: multi-version ML + rejuvenation.
//! * [`avsim`] — CARLA-substitute driving simulator with 3-version perception.
//!
//! See `README.md` for a tour and `examples/` for runnable entry points.

#![forbid(unsafe_code)]

pub use mvml_avsim as avsim;
pub use mvml_core as mvml;
pub use mvml_faultinject as faultinject;
pub use mvml_nn as nn;
pub use mvml_petri as petri;
